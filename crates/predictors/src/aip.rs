//! AIP — the counter-based Access Interval Predictor (Kharbutli &
//! Solihin, ICCD 2005 / IEEE TC 2008), the second dead-block baseline in
//! the paper's comparison.
//!
//! Each line counts the accesses its *set* receives between consecutive
//! accesses to the line (the *access interval*). A two-dimensional
//! prediction table indexed by hashed PC × hashed address learns each
//! line's maximum live interval with a confidence bit. A resident line is
//! predicted **dead** once its current interval exceeds the learned
//! threshold with confidence — dead lines are preferred victims at
//! replacement.
//!
//! Per-line state is 21 bits as in the paper's storage accounting: 8-bit
//! hashed PC, 8-bit interval counter, 4-bit max live interval, 1
//! predicted-dead flag; the 256×256 table holds 4-bit thresholds plus a
//! confidence bit (5 bits/entry → the paper's 124 KB total for a 2 MB
//! LLC).
//!
//! As the paper observes (Section VI-A), AIP targets *non-DOA* dead
//! blocks; LLTs are dominated by DOA entries, which is why AIP-TLB barely
//! helps — reproducing that negative result is part of this baseline's
//! job.

use dpc_memsim::policy::{
    AccuracyReport, BlockFillDecision, EvictedBlock, EvictedPage, InsertPriority, LlcPolicy,
    LltPolicy, PageFillDecision, PolicyLineView,
};
use dpc_types::hash::{fold_xor, hash_pc};
use dpc_types::{BlockAddr, Pc, Pfn, Vpn};

/// Per-line state layout.
const PC_SHIFT: u32 = 0; // 8 bits
const INTERVAL_SHIFT: u32 = 8; // 8 bits (saturating)
const MAX_LIVE_SHIFT: u32 = 16; // 4 bits (saturating)
const PREDICTED_DEAD_BIT: u32 = 1 << 20;

const PC_BITS: u32 = 8;
const ADDR_BITS: u32 = 8;
const INTERVAL_MAX: u32 = 0xFF;
const MAX_LIVE_MAX: u32 = 0xF;

#[inline]
fn pc_of(state: u32) -> u32 {
    (state >> PC_SHIFT) & 0xFF
}

#[inline]
fn interval_of(state: u32) -> u32 {
    (state >> INTERVAL_SHIFT) & 0xFF
}

#[inline]
fn max_live_of(state: u32) -> u32 {
    (state >> MAX_LIVE_SHIFT) & 0xF
}

#[inline]
fn set_interval(state: u32, v: u32) -> u32 {
    (state & !(0xFF << INTERVAL_SHIFT)) | (v.min(INTERVAL_MAX) << INTERVAL_SHIFT)
}

#[inline]
fn set_max_live(state: u32, v: u32) -> u32 {
    (state & !(0xF << MAX_LIVE_SHIFT)) | (v.min(MAX_LIVE_MAX) << MAX_LIVE_SHIFT)
}

/// One prediction-table entry: a 4-bit threshold plus a confidence bit.
/// (`seen` models the hardware's valid bit — a cold entry carries no
/// observation and must not gain confidence from matching zero.)
#[derive(Clone, Copy, Debug, Default)]
struct TableEntry {
    threshold: u8,
    confident: bool,
    seen: bool,
}

/// The PC × address prediction table and training logic shared by the LLC
/// and TLB instantiations.
#[derive(Debug)]
struct AipCore {
    table: Vec<TableEntry>,
    predictions: u64,
    correct: u64,
    mispredictions: u64,
    doa_evictions: u64,
}

impl AipCore {
    fn new() -> Self {
        AipCore {
            table: vec![TableEntry::default(); 1 << (PC_BITS + ADDR_BITS)],
            predictions: 0,
            correct: 0,
            mispredictions: 0,
            doa_evictions: 0,
        }
    }

    #[inline]
    fn index(pc_hash: u32, addr: u64) -> usize {
        ((pc_hash << ADDR_BITS) | fold_xor(addr, ADDR_BITS)) as usize
    }

    /// Interval bookkeeping on every set access: the hit line banks its
    /// live interval and resets; all other lines age.
    fn on_set_access(&mut self, lines: &mut [PolicyLineView]) {
        for view in lines {
            let state = view.state;
            if view.is_hit {
                let live = interval_of(state).min(MAX_LIVE_MAX);
                let banked = set_max_live(state, max_live_of(state).max(live));
                view.state = set_interval(banked, 0) & !PREDICTED_DEAD_BIT;
            } else {
                view.state = set_interval(state, interval_of(state) + 1);
            }
        }
    }

    /// Whether a line is predicted dead under the learned threshold.
    ///
    /// Prediction only requires a prior observation (`seen`), not a
    /// repeated one: counter-based predictors fire as soon as the current
    /// interval exceeds the learned threshold, which is what makes AIP
    /// aggressive — large wins on regular access patterns and real losses
    /// on irregular ones, exactly the volatility the paper reports for
    /// AIP-LLC (Table V). The confidence bit sharpens the threshold
    /// (a confirmed threshold is trusted as-is; an unconfirmed one gets a
    /// grace margin).
    fn is_dead(&self, tag: u64, state: u32) -> bool {
        let idx = Self::index(pc_of(state), tag);
        let entry = self.table[idx];
        if !entry.seen {
            return false;
        }
        let margin = if entry.confident { 0 } else { 2 };
        interval_of(state) > u32::from(entry.threshold) + margin
    }

    /// Victim selection: the first confidently-dead line, if any.
    fn pick_victim(&mut self, lines: &mut [PolicyLineView]) -> Option<usize> {
        for view in lines.iter_mut() {
            if self.is_dead(view.tag, view.state) {
                if view.state & PREDICTED_DEAD_BIT == 0 {
                    view.state |= PREDICTED_DEAD_BIT;
                    self.predictions += 1;
                }
                return Some(view.way);
            }
        }
        None
    }

    fn initial_state(&self, pc: Pc) -> u32 {
        hash_pc(pc, PC_BITS) << PC_SHIFT
    }

    /// Eviction: train the table with the observed maximum live interval
    /// (confidence set when the observation repeats) and resolve
    /// prediction accuracy.
    fn on_evict(&mut self, tag: u64, state: u32, hits: u64) {
        if hits == 0 {
            self.doa_evictions += 1;
        }
        if state & PREDICTED_DEAD_BIT != 0 {
            // The line was victimized as predicted-dead; the prediction was
            // right if it indeed saw no further hit — which is trivially
            // true at eviction, so correctness is judged by whether the
            // prediction preceded any hit: a dead prediction cleared on a
            // later hit never reaches here with the bit set.
            self.correct += 1;
        }
        let idx = Self::index(pc_of(state), tag);
        let observed = max_live_of(state).min(MAX_LIVE_MAX) as u8;
        let entry = &mut self.table[idx];
        if entry.seen && entry.threshold == observed {
            entry.confident = true;
        } else {
            entry.threshold = observed;
            entry.confident = false;
            entry.seen = true;
        }
    }

    fn report(&self) -> AccuracyReport {
        AccuracyReport {
            predictions: self.predictions,
            correct: self.correct,
            mispredictions: self.mispredictions,
            true_doas: self.doa_evictions,
        }
    }
}

/// AIP attached to the LLC.
#[derive(Debug)]
pub struct AipLlc {
    core: AipCore,
}

impl AipLlc {
    /// The paper's AIP-LLC with a 256 × 256 prediction table.
    pub fn paper_default() -> Self {
        AipLlc { core: AipCore::new() }
    }
}

impl Default for AipLlc {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl LlcPolicy for AipLlc {
    #[inline]
    fn policy_name(&self) -> &'static str {
        "AIP-LLC"
    }

    #[inline]
    fn accuracy_report(&self) -> Option<AccuracyReport> {
        Some(self.core.report())
    }

    #[inline]
    fn on_fill(&mut self, _block: BlockAddr, pc: Pc) -> BlockFillDecision {
        BlockFillDecision::Allocate {
            priority: InsertPriority::Normal,
            state: self.core.initial_state(pc),
        }
    }

    #[inline]
    fn uses_set_views(&self) -> bool {
        true
    }

    #[inline]
    fn overrides_victim(&self) -> bool {
        true
    }

    #[inline]
    fn on_set_access(&mut self, lines: &mut [PolicyLineView]) {
        self.core.on_set_access(lines);
    }

    #[inline]
    fn pick_victim(&mut self, lines: &mut [PolicyLineView]) -> Option<usize> {
        self.core.pick_victim(lines)
    }

    #[inline]
    fn on_evict(&mut self, evicted: EvictedBlock) {
        self.core.on_evict(evicted.block.raw(), evicted.state, evicted.life.hits);
    }
}

/// AIP adapted to the last-level TLB (the paper's AIP-TLB configuration,
/// 21 bits of metadata per entry).
#[derive(Debug)]
pub struct AipTlb {
    core: AipCore,
}

impl AipTlb {
    /// The paper's AIP-TLB with the default 256 × 256 table.
    pub fn paper_default() -> Self {
        AipTlb { core: AipCore::new() }
    }
}

impl Default for AipTlb {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl LltPolicy for AipTlb {
    #[inline]
    fn policy_name(&self) -> &'static str {
        "AIP-TLB"
    }

    #[inline]
    fn accuracy_report(&self) -> Option<AccuracyReport> {
        Some(self.core.report())
    }

    #[inline]
    fn on_fill(&mut self, _vpn: Vpn, _pfn: Pfn, pc: Pc) -> PageFillDecision {
        PageFillDecision::Allocate {
            priority: InsertPriority::Normal,
            state: self.core.initial_state(pc),
        }
    }

    #[inline]
    fn uses_set_views(&self) -> bool {
        true
    }

    #[inline]
    fn overrides_victim(&self) -> bool {
        true
    }

    #[inline]
    fn on_set_access(&mut self, lines: &mut [PolicyLineView]) {
        self.core.on_set_access(lines);
    }

    #[inline]
    fn pick_victim(&mut self, lines: &mut [PolicyLineView]) -> Option<usize> {
        self.core.pick_victim(lines)
    }

    #[inline]
    fn on_evict(&mut self, evicted: EvictedPage) {
        self.core.on_evict(evicted.vpn.raw(), evicted.state, evicted.life.hits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(way: usize, tag: u64, state: u32, is_hit: bool) -> PolicyLineView {
        PolicyLineView { way, tag, hits: 0, is_hit, state }
    }

    #[test]
    fn intervals_age_and_reset() {
        let mut core = AipCore::new();
        let mut views = vec![view(0, 10, 0, true), view(1, 20, 0, false)];
        core.on_set_access(&mut views);
        assert_eq!(interval_of(views[0].state), 0, "hit line resets");
        assert_eq!(interval_of(views[1].state), 1, "other lines age");
        views[0].is_hit = false;
        views[1].is_hit = true;
        core.on_set_access(&mut views);
        assert_eq!(interval_of(views[0].state), 1);
        assert_eq!(interval_of(views[1].state), 0);
        assert_eq!(max_live_of(views[1].state), 1, "live interval banked on access");
    }

    #[test]
    fn unseen_entries_never_predict() {
        let core = AipCore::new();
        let state = 0xAB; // pc hash only
        assert!(!core.is_dead(10, set_interval(state, 255)), "cold table entry must not fire");
    }

    #[test]
    fn confidence_sharpens_the_threshold() {
        let mut core = AipCore::new();
        let pc = Pc::new(0x400);
        let state = core.initial_state(pc);
        // First eviction with max live 0: threshold := 0, not confident —
        // prediction fires only past the grace margin of 2.
        core.on_evict(10, state, 0);
        assert!(!core.is_dead(10, set_interval(state, 2)));
        assert!(core.is_dead(10, set_interval(state, 3)));
        // Second identical observation: confident — threshold trusted
        // as-is.
        core.on_evict(10, state, 0);
        assert!(core.is_dead(10, set_interval(state, 1)));
        assert!(!core.is_dead(10, set_interval(state, 0)), "interval 0 is not past threshold");
    }

    #[test]
    fn victim_picking_prefers_dead_lines() {
        let mut core = AipCore::new();
        let pc = Pc::new(0x400);
        let base = core.initial_state(pc);
        core.on_evict(20, base, 0);
        core.on_evict(20, base, 0); // confident threshold 0 for tag 20
        let alive = base;
        let dead = set_interval(base, 9);
        let mut views = vec![view(0, 10, alive, false), view(1, 20, dead, false)];
        let choice = core.pick_victim(&mut views);
        assert_eq!(choice, Some(1));
        assert_eq!(core.predictions, 1);
        // Picking again (with the written-back state carrying the
        // predicted-dead bit) does not double-count the same prediction.
        let choice2 = core.pick_victim(&mut views);
        assert_eq!(choice2, Some(1));
        assert_eq!(core.predictions, 1);
    }

    #[test]
    fn threshold_change_drops_confidence() {
        let mut core = AipCore::new();
        let state = core.initial_state(Pc::new(0x400));
        core.on_evict(10, state, 0);
        core.on_evict(10, state, 0); // confident at 0
        core.on_evict(10, set_max_live(state, 3), 1); // different observation
                                                      // New threshold 3, unconfident: the grace margin applies again.
        assert!(!core.is_dead(10, set_interval(state, 5)));
        assert!(core.is_dead(10, set_interval(state, 6)));
    }

    #[test]
    fn policies_allocate_normally() {
        let mut llc = AipLlc::paper_default();
        assert!(matches!(
            llc.on_fill(BlockAddr::new(1), Pc::new(2)),
            BlockFillDecision::Allocate { priority: InsertPriority::Normal, .. }
        ));
        let mut tlb = AipTlb::paper_default();
        assert!(matches!(
            tlb.on_fill(Vpn::new(1), Pfn::new(2), Pc::new(3)),
            PageFillDecision::Allocate { priority: InsertPriority::Normal, .. }
        ));
        assert_eq!(llc.policy_name(), "AIP-LLC");
        assert_eq!(tlb.policy_name(), "AIP-TLB");
    }

    #[test]
    fn state_field_roundtrips() {
        let s = set_max_live(set_interval(0xAB, 200), 9);
        assert_eq!(pc_of(s), 0xAB);
        assert_eq!(interval_of(s), 200);
        assert_eq!(max_live_of(s), 9);
        // Saturation.
        assert_eq!(interval_of(set_interval(0, 999)), 255);
        assert_eq!(max_live_of(set_max_live(0, 99)), 15);
    }
}
