//! Ghost-FIFO accuracy tracking for bypass predictors.
//!
//! A bypassed entry never resides in the structure, so whether the bypass
//! was correct cannot be observed directly. [`GhostTracker`] keeps, per
//! set, the tags of recently bypassed entries. A ghost entry that is
//! looked up again while still "resident" in the ghost would have produced
//! a hit had it been allocated — the bypass was a **misprediction**. A
//! ghost entry that survives `associativity` subsequent fills to its set
//! without being re-referenced would have been evicted unhit — the bypass
//! was **correct** (the entry was truly DOA).
//!
//! This mirrors how sampled shadow structures are used to evaluate dead
//! block predictors (e.g. Khan et al., MICRO'10) and approximates the
//! entry's hypothetical residency by its set's fill activity.

use std::collections::VecDeque;

#[derive(Clone, Copy, Debug)]
struct GhostEntry {
    tag: u64,
    birth_fills: u64,
}

/// Per-set ghost FIFOs measuring bypass-prediction outcomes.
#[derive(Clone, Debug)]
pub struct GhostTracker {
    assoc: u64,
    sets: u64,
    /// `sets - 1` when the set count is a power of two (the common
    /// paper geometries), letting [`set_of`](Self::set_of) mask instead
    /// of dividing on every lookup; `None` falls back to modulo.
    set_mask: Option<u64>,
    ghosts: Vec<VecDeque<GhostEntry>>,
    fills: Vec<u64>,
    /// Bypasses whose ghost aged out un-referenced (correct predictions).
    pub correct: u64,
    /// Bypasses re-referenced while ghost-resident (mispredictions).
    pub mispredictions: u64,
    /// Total bypasses recorded.
    pub predictions: u64,
}

impl GhostTracker {
    /// Creates a tracker mirroring a structure with `sets` sets of
    /// `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `assoc` is zero.
    pub fn new(sets: u64, assoc: u64) -> Self {
        assert!(sets > 0 && assoc > 0, "ghost tracker requires nonzero geometry");
        GhostTracker {
            assoc,
            sets,
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            ghosts: vec![VecDeque::new(); sets as usize],
            fills: vec![0; sets as usize],
            correct: 0,
            mispredictions: 0,
            predictions: 0,
        }
    }

    #[inline]
    fn set_of(&self, tag: u64) -> usize {
        match self.set_mask {
            Some(mask) => (tag & mask) as usize,
            None => (tag % self.sets) as usize,
        }
    }

    /// Records a bypass of `tag`. The bypass itself counts as a
    /// fill-attempt for aging purposes: in the counterfactual stay being
    /// tracked, the entry would have been allocated, and subsequent
    /// fill-attempts to its set would have been real fills displacing it.
    #[inline]
    pub fn note_bypass(&mut self, tag: u64) {
        self.predictions += 1;
        let set = self.set_of(tag);
        self.age(set);
        let birth = self.fills[set];
        self.ghosts[set].push_back(GhostEntry { tag, birth_fills: birth });
    }

    /// Records a fill (allocation) into the set `tag` maps to, aging that
    /// set's ghosts.
    #[inline]
    pub fn note_fill(&mut self, tag: u64) {
        let set = self.set_of(tag);
        self.age(set);
    }

    #[inline]
    fn age(&mut self, set: usize) {
        dpc_types::invariant!(set < self.fills.len(), "ghost set {set} out of range");
        self.fills[set] += 1;
        let cutoff = self.fills[set];
        let assoc = self.assoc;
        let ghosts = &mut self.ghosts[set];
        while let Some(front) = ghosts.front() {
            if cutoff - front.birth_fills >= assoc {
                ghosts.pop_front();
                self.correct += 1;
            } else {
                break;
            }
        }
    }

    /// Records a lookup of `tag`; a ghost match is a detected
    /// misprediction and removes the ghost.
    ///
    /// Returns `true` if the lookup matched a ghost.
    #[inline]
    pub fn note_lookup(&mut self, tag: u64) -> bool {
        let set = self.set_of(tag);
        if let Some(pos) = self.ghosts[set].iter().position(|g| g.tag == tag) {
            self.ghosts[set].remove(pos);
            self.mispredictions += 1;
            true
        } else {
            false
        }
    }

    /// Resolves all still-pending ghosts as correct (end of simulation: no
    /// further re-reference is coming).
    pub fn resolved_correct(&self) -> u64 {
        let pending: u64 = self.ghosts.iter().map(|g| g.len() as u64).sum();
        self.correct + pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aged_out_ghost_is_correct() {
        let mut g = GhostTracker::new(1, 2);
        g.note_bypass(10);
        g.note_fill(0);
        g.note_fill(0); // two fills = associativity -> ghost expires
        assert_eq!(g.correct, 1);
        assert_eq!(g.mispredictions, 0);
        assert_eq!(g.predictions, 1);
    }

    #[test]
    fn rereferenced_ghost_is_misprediction() {
        let mut g = GhostTracker::new(1, 2);
        g.note_bypass(10);
        assert!(g.note_lookup(10));
        assert_eq!(g.mispredictions, 1);
        assert_eq!(g.correct, 0);
        // The ghost is consumed: a second lookup is not a second error.
        assert!(!g.note_lookup(10));
        assert_eq!(g.mispredictions, 1);
    }

    #[test]
    fn expiry_happens_before_late_rereference() {
        let mut g = GhostTracker::new(1, 2);
        g.note_bypass(10);
        g.note_fill(0);
        g.note_fill(0);
        // Re-reference after the hypothetical stay ended: not an error.
        assert!(!g.note_lookup(10));
        assert_eq!(g.correct, 1);
        assert_eq!(g.mispredictions, 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut g = GhostTracker::new(2, 1);
        g.note_bypass(0); // set 0
        g.note_fill(1); // set 1: must not age set 0's ghost
        assert_eq!(g.correct, 0);
        g.note_fill(0);
        assert_eq!(g.correct, 1);
    }

    #[test]
    fn pending_ghosts_resolve_correct() {
        let mut g = GhostTracker::new(1, 4);
        g.note_bypass(1);
        g.note_bypass(2);
        assert_eq!(g.correct, 0);
        assert_eq!(g.resolved_correct(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_geometry_rejected() {
        GhostTracker::new(0, 1);
    }
}
