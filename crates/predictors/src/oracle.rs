//! The approximate oracle dead-page predictor (paper Table IV).
//!
//! A true oracle needs the full future; the paper approximates it with a
//! lookahead of one eviction. We approximate it in the same spirit with a
//! **two-pass replay**: a recording pass runs the baseline and logs, per
//! page, the DOA outcome of each of its LLT stays in order; the oracle
//! pass replays the same workload and bypasses exactly the fills whose
//! recorded stay was DOA. Because bypassing perturbs subsequent LLT
//! contents the replay is not a perfect oracle — mirroring the paper's own
//! caveat about its approximation.
//!
//! ```
//! use dpc_memsim::{NullBlockPolicy, System};
//! use dpc_predictors::{DoaRecorder, OracleBypass};
//! use dpc_types::SystemConfig;
//!
//! # fn main() -> Result<(), dpc_memsim::SystemError> {
//! let config = SystemConfig::paper_baseline();
//! let (recorder, record) = DoaRecorder::new();
//! let mut pass1 = System::with_policies(config, Box::new(recorder), Box::new(NullBlockPolicy))?;
//! // ... run pass1 with the workload, then:
//! let mut pass2 = System::with_policies(
//!     config,
//!     Box::new(OracleBypass::new(record)),
//!     Box::new(NullBlockPolicy),
//! )?;
//! // ... run pass2 with a fresh instance of the same workload.
//! # let _ = (&mut pass1, &mut pass2);
//! # Ok(()) }
//! ```

use dpc_memsim::policy::{
    EvictedPage, InsertPriority, LltPolicy, PageFillDecision, PolicyLineView,
};
use dpc_types::{Pc, Pfn, Vpn};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// Shared per-page stay-outcome log: for each VPN, the DOA-ness of its
/// successive LLT stays in fill order.
///
/// # Determinism audit
///
/// This and the other `HashMap`-backed tables in this module
/// ([`LookupRecord`], [`OracleBypass`]'s replay cursors) must only ever
/// be accessed **by key** (`get`/`get_mut`/`entry`/`insert`): iterating a
/// default-hasher map would expose the per-instance `RandomState` order
/// and break bit-identical replays. `cargo xtask lint`
/// (`determinism::hash-iteration`) enforces this, and
/// `oracle_table_render_is_identical_across_fresh_contexts` in
/// `tests/determinism.rs` regression-tests it end to end.
pub type DoaRecord = Rc<RefCell<HashMap<Vpn, VecDeque<bool>>>>;

/// Pass-1 policy: behaves exactly like the baseline while logging stay
/// outcomes.
#[derive(Debug)]
pub struct DoaRecorder {
    record: DoaRecord,
}

impl DoaRecorder {
    /// Creates the recorder and the shared record to hand to
    /// [`OracleBypass`] afterwards.
    pub fn new() -> (Self, DoaRecord) {
        let record: DoaRecord = Rc::new(RefCell::new(HashMap::new()));
        (DoaRecorder { record: Rc::clone(&record) }, record)
    }
}

impl LltPolicy for DoaRecorder {
    fn policy_name(&self) -> &'static str {
        "oracle-recorder"
    }

    fn on_evict(&mut self, evicted: EvictedPage) {
        self.record.borrow_mut().entry(evicted.vpn).or_default().push_back(evicted.life.hits == 0);
    }
}

/// Pass-2 policy: bypasses fills whose recorded stay was DOA.
#[derive(Debug)]
pub struct OracleBypass {
    record: DoaRecord,
    /// Fills bypassed on oracle knowledge.
    pub bypasses: u64,
    /// Fills with no recorded outcome (record exhausted by perturbation).
    pub unknown_fills: u64,
}

impl OracleBypass {
    /// Creates the oracle policy from a pass-1 record.
    pub fn new(record: DoaRecord) -> Self {
        OracleBypass { record, bypasses: 0, unknown_fills: 0 }
    }
}

impl LltPolicy for OracleBypass {
    fn policy_name(&self) -> &'static str {
        "oracle"
    }

    fn on_fill(&mut self, vpn: Vpn, _pfn: Pfn, _pc: Pc) -> PageFillDecision {
        let doa = {
            let mut record = self.record.borrow_mut();
            match record.get_mut(&vpn) {
                Some(queue) => queue.pop_front(),
                None => None,
            }
        };
        match doa {
            Some(true) => {
                self.bypasses += 1;
                PageFillDecision::Bypass
            }
            Some(false) => PageFillDecision::ALLOCATE,
            None => {
                self.unknown_fills += 1;
                PageFillDecision::ALLOCATE
            }
        }
    }
}

// ---------------------------------------------------------------------
// Belady-style lookahead oracle.
// ---------------------------------------------------------------------

/// Shared per-page LLT-lookup-time log: for each VPN, the global LLT
/// lookup indices at which it was looked up in the recording pass.
///
/// The LLT lookup stream is *identical* across passes because the L1 TLBs
/// (which filter it) are unaffected by the LLT policy, so pass-2 times
/// align exactly with pass-1 times.
pub type LookupRecord = Rc<RefCell<HashMap<Vpn, Vec<u64>>>>;

/// An immutable, `Send + Sync` snapshot of a recording pass's per-page
/// lookup times, ready to be cached across runs and shared between worker
/// threads. Produced by [`LookupRecorder::freeze`], consumed by
/// [`BeladyOracle::new`].
pub type LookupTrace = Arc<HashMap<Vpn, Vec<u64>>>;

/// Pass-1 policy for [`BeladyOracle`]: baseline behaviour while logging
/// every LLT lookup's global index per page.
#[derive(Debug)]
pub struct LookupRecorder {
    record: LookupRecord,
    time: u64,
}

impl LookupRecorder {
    /// Creates the recorder and the shared record to hand to
    /// [`LookupRecorder::freeze`] once the recording pass finishes.
    pub fn new() -> (Self, LookupRecord) {
        let record: LookupRecord = Rc::new(RefCell::new(HashMap::new()));
        (LookupRecorder { record: Rc::clone(&record), time: 0 }, record)
    }

    /// Freezes a finished recording into a shareable [`LookupTrace`].
    /// Cheap (a move, no copy) when the recorder itself has been dropped,
    /// which releases the other `Rc` handle.
    pub fn freeze(record: LookupRecord) -> LookupTrace {
        Arc::new(match Rc::try_unwrap(record) {
            Ok(cell) => cell.into_inner(),
            Err(shared) => shared.borrow().clone(),
        })
    }
}

impl LltPolicy for LookupRecorder {
    fn policy_name(&self) -> &'static str {
        "belady-recorder"
    }

    fn on_lookup(&mut self, vpn: Vpn, _hit: bool) {
        self.time += 1;
        self.record.borrow_mut().entry(vpn).or_default().push(self.time);
    }
}

/// The paper's "oracle with lookahead" (Table IV), realized as Belady
/// bypass/replacement: at each fill the policy knows every page's true
/// next LLT-lookup time (from the recording pass) and
///
/// * **bypasses** the fill if its next use lies further in the future than
///   every resident entry's in its set (allocating could only displace
///   something more useful);
/// * otherwise evicts the resident entry with the farthest next use.
///
/// Unlike a replay of DOA outcomes, this handles thrashing correctly:
/// it retains the subset of a too-large cyclic working set that
/// minimizes misses.
#[derive(Debug)]
pub struct BeladyOracle {
    trace: LookupTrace,
    cursors: HashMap<Vpn, usize>,
    time: u64,
    sets: u64,
    ways: usize,
    /// Mirror of the LLT's contents (the policy decides every victim, so
    /// the mirror stays exact).
    mirror: Vec<Vec<Vpn>>,
    pending_victim: Option<Vpn>,
    /// Fills bypassed on oracle knowledge.
    pub bypasses: u64,
}

impl BeladyOracle {
    /// Creates the oracle for an LLT with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(trace: LookupTrace, sets: u64, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "oracle requires nonzero LLT geometry");
        BeladyOracle {
            trace,
            cursors: HashMap::new(),
            time: 0,
            sets,
            ways,
            mirror: vec![Vec::new(); sets as usize],
            pending_victim: None,
            bypasses: 0,
        }
    }

    /// Next recorded lookup time of `vpn` strictly after the current time
    /// (`u64::MAX` when there is none).
    fn next_use(&mut self, vpn: Vpn) -> u64 {
        let Some(times) = self.trace.get(&vpn) else {
            return u64::MAX;
        };
        let cursor = self.cursors.entry(vpn).or_insert(0);
        while *cursor < times.len() && times[*cursor] <= self.time {
            *cursor += 1;
        }
        times.get(*cursor).copied().unwrap_or(u64::MAX)
    }
}

impl LltPolicy for BeladyOracle {
    fn policy_name(&self) -> &'static str {
        "oracle"
    }

    fn on_lookup(&mut self, _vpn: Vpn, _hit: bool) {
        self.time += 1;
    }

    fn on_fill(&mut self, vpn: Vpn, _pfn: Pfn, _pc: Pc) -> PageFillDecision {
        let set = (vpn.raw() % self.sets) as usize;
        if self.mirror[set].len() < self.ways {
            self.mirror[set].push(vpn);
            self.pending_victim = None;
            return PageFillDecision::ALLOCATE;
        }
        let own_next = self.next_use(vpn);
        let (victim_idx, victim_next) = {
            let residents = self.mirror[set].clone();
            let mut best = (0usize, 0u64);
            for (idx, &resident) in residents.iter().enumerate() {
                let next = self.next_use(resident);
                if next >= best.1 {
                    best = (idx, next);
                }
            }
            best
        };
        if own_next >= victim_next {
            self.bypasses += 1;
            PageFillDecision::Bypass
        } else {
            let victim = self.mirror[set][victim_idx];
            self.mirror[set][victim_idx] = vpn;
            self.pending_victim = Some(victim);
            PageFillDecision::Allocate { priority: InsertPriority::Normal, state: 0 }
        }
    }

    fn overrides_victim(&self) -> bool {
        true
    }

    fn pick_victim(&mut self, lines: &mut [PolicyLineView]) -> Option<usize> {
        let victim = self.pending_victim.take()?;
        lines.iter().find(|view| view.tag == victim.raw()).map(|view| view.way)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_memsim::set_assoc::LineLife;

    fn evicted(vpn: u64, hits: u64) -> EvictedPage {
        EvictedPage {
            vpn: Vpn::new(vpn),
            pfn: Pfn::new(1),
            state: 0,
            life: LineLife { fill_seq: 0, last_hit_seq: 0, hits },
        }
    }

    #[test]
    fn recorder_logs_in_order() {
        let (mut rec, record) = DoaRecorder::new();
        rec.on_evict(evicted(7, 0)); // DOA
        rec.on_evict(evicted(7, 3)); // live
        let log = record.borrow();
        assert_eq!(log[&Vpn::new(7)], VecDeque::from([true, false]));
    }

    #[test]
    fn oracle_replays_outcomes_in_order() {
        let (mut rec, record) = DoaRecorder::new();
        rec.on_evict(evicted(7, 0));
        rec.on_evict(evicted(7, 3));
        let mut oracle = OracleBypass::new(record);
        assert_eq!(oracle.on_fill(Vpn::new(7), Pfn::new(1), Pc::new(0)), PageFillDecision::Bypass);
        assert_eq!(
            oracle.on_fill(Vpn::new(7), Pfn::new(1), Pc::new(0)),
            PageFillDecision::ALLOCATE
        );
        // Record exhausted: default to allocate.
        assert_eq!(
            oracle.on_fill(Vpn::new(7), Pfn::new(1), Pc::new(0)),
            PageFillDecision::ALLOCATE
        );
        assert_eq!(oracle.bypasses, 1);
        assert_eq!(oracle.unknown_fills, 1);
    }

    #[test]
    fn unseen_pages_allocate() {
        let (_rec, record) = DoaRecorder::new();
        let mut oracle = OracleBypass::new(record);
        assert_eq!(
            oracle.on_fill(Vpn::new(42), Pfn::new(1), Pc::new(0)),
            PageFillDecision::ALLOCATE
        );
        assert_eq!(oracle.unknown_fills, 1);
    }

    /// Record lookups for vpns at the given times.
    fn lookup_record(entries: &[(u64, &[u64])]) -> LookupTrace {
        let mut record = HashMap::new();
        for &(vpn, times) in entries {
            record.insert(Vpn::new(vpn), times.to_vec());
        }
        Arc::new(record)
    }

    #[test]
    fn freeze_is_zero_copy_when_recorder_is_dropped() {
        let (mut rec, record) = LookupRecorder::new();
        rec.on_lookup(Vpn::new(3), false);
        rec.on_lookup(Vpn::new(3), true);
        drop(rec);
        let trace = LookupRecorder::freeze(record);
        assert_eq!(trace[&Vpn::new(3)], vec![1, 2]);
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&trace);
    }

    #[test]
    fn belady_fills_empty_ways() {
        let record = lookup_record(&[]);
        let mut oracle = BeladyOracle::new(record, 1, 2);
        assert_eq!(
            oracle.on_fill(Vpn::new(1), Pfn::new(1), Pc::new(0)),
            PageFillDecision::ALLOCATE
        );
        assert_eq!(
            oracle.on_fill(Vpn::new(2), Pfn::new(2), Pc::new(0)),
            PageFillDecision::ALLOCATE
        );
    }

    #[test]
    fn belady_bypasses_never_reused_page_over_useful_residents() {
        // Residents 1 and 2 are re-used soon; page 3 never again.
        let record = lookup_record(&[(1, &[100]), (2, &[50]), (3, &[])]);
        let mut oracle = BeladyOracle::new(record, 1, 2);
        oracle.on_fill(Vpn::new(1), Pfn::new(1), Pc::new(0));
        oracle.on_fill(Vpn::new(2), Pfn::new(2), Pc::new(0));
        assert_eq!(oracle.on_fill(Vpn::new(3), Pfn::new(3), Pc::new(0)), PageFillDecision::Bypass);
        assert_eq!(oracle.bypasses, 1);
    }

    #[test]
    fn belady_evicts_farthest_next_use() {
        // Resident 1 reused at t=100, resident 2 at t=50; incoming 3 at
        // t=10 → evict 1.
        let record = lookup_record(&[(1, &[100]), (2, &[50]), (3, &[10])]);
        let mut oracle = BeladyOracle::new(record, 1, 2);
        oracle.on_fill(Vpn::new(1), Pfn::new(1), Pc::new(0));
        oracle.on_fill(Vpn::new(2), Pfn::new(2), Pc::new(0));
        assert!(matches!(
            oracle.on_fill(Vpn::new(3), Pfn::new(3), Pc::new(0)),
            PageFillDecision::Allocate { .. }
        ));
        let mut views = vec![
            PolicyLineView { way: 0, tag: 1, hits: 0, is_hit: false, state: 0 },
            PolicyLineView { way: 1, tag: 2, hits: 0, is_hit: false, state: 0 },
        ];
        assert_eq!(oracle.pick_victim(&mut views), Some(0), "vpn 1 has the farthest next use");
    }

    #[test]
    fn belady_time_advances_past_lookups() {
        // Page 1 used at t=1 only; after that lookup it has no future use
        // and loses to page 2 (used at t=100).
        let record = lookup_record(&[(1, &[1]), (2, &[100]), (3, &[2, 99])]);
        let mut oracle = BeladyOracle::new(record, 1, 1);
        oracle.on_fill(Vpn::new(1), Pfn::new(1), Pc::new(0));
        oracle.on_lookup(Vpn::new(1), true); // t = 1: page 1's last use
        assert!(
            matches!(
                oracle.on_fill(Vpn::new(3), Pfn::new(3), Pc::new(0)),
                PageFillDecision::Allocate { .. }
            ),
            "page 3 (next use t=2) must displace the finished page 1"
        );
    }
}
