//! SHiP — Signature-based Hit Predictor (Wu et al., MICRO 2011), the
//! strongest prior dead-block baseline in the paper's comparison.
//!
//! SHiP associates each fill with a PC *signature* and learns, in the
//! Signature History Counter Table (SHCT), whether blocks brought by that
//! signature are re-referenced. A zero counter predicts a **distant**
//! re-reference interval: the paper adapts this to the LRU baseline by
//! inserting such entries at the LRU position (and at RRPV = 3 under
//! SRRIP) — see Section VI-A: *"we adapt SHiP to mark entries predicted to
//! have distant re-reference as LRU."*
//!
//! Two instantiations mirror the paper's configurations:
//!
//! * [`ShipLlc`] — 14-bit PC signature, 16K-entry SHCT of 3-bit counters;
//! * [`ShipTlb`] — 8-bit PC signature (*"configure SHiP-TLB to use similar
//!   storage as dpPred, indexing with an 8-bit hash of the PC"*).
//!
//! Prediction-quality accounting (Tables VI/VII): a distant insertion is a
//! DOA prediction; it is correct if the entry is evicted with zero hits.

use crate::ghost::GhostTracker;
use dpc_memsim::policy::{
    AccuracyReport, BlockFillDecision, EvictedBlock, EvictedPage, InsertPriority, LlcPolicy,
    LltPolicy, PageFillDecision,
};
use dpc_types::hash::hash_pc;
use dpc_types::{BlockAddr, CacheConfig, Pc, Pfn, SatCounter, TlbConfig, Vpn};

/// Outcome bit: the entry has been re-referenced since fill.
const OUTCOME_BIT: u32 = 1 << 31;
/// Predicted-distant bit (for accuracy accounting).
const PREDICTED_BIT: u32 = 1 << 30;
/// Mask for the stored signature.
const SIG_MASK: u32 = (1 << 16) - 1;

/// The signature table and insertion logic shared by both instantiations.
///
/// Accuracy is measured *counterfactually* with a ghost FIFO: a
/// distant-inserted entry is evicted almost immediately, so judging the
/// prediction by "was it hit before eviction" would be self-fulfilling.
/// Instead, an unhit distant entry enters the ghost at eviction; a
/// re-reference within its would-be-normal stay resolves the prediction
/// wrong, aging out resolves it right.
#[derive(Debug)]
struct ShipCore {
    shct: Vec<SatCounter>,
    sig_bits: u32,
    ghost: GhostTracker,
    mispredicted_resident: u64,
    doa_evictions: u64,
}

impl ShipCore {
    fn new(sig_bits: u32, counter_bits: u32, sets: u64, ways: u64) -> Self {
        assert!(sig_bits > 0 && sig_bits <= 16, "signature width must be 1..=16 bits");
        let mut shct = vec![SatCounter::new(counter_bits); 1 << sig_bits];
        // Weak-reuse initialization at mid-range: a signature must show a
        // sustained no-reuse majority before its fills are predicted
        // distant, as in SHiP's original training.
        for c in &mut shct {
            for _ in 0..(1u32 << counter_bits) / 2 {
                c.increment();
            }
        }
        ShipCore {
            shct,
            sig_bits,
            ghost: GhostTracker::new(sets, ways),
            mispredicted_resident: 0,
            doa_evictions: 0,
        }
    }

    fn on_lookup(&mut self, tag: u64) {
        self.ghost.note_lookup(tag);
    }

    /// Decide insertion for a fill brought by `pc`; returns (priority,
    /// initial line state).
    fn on_fill(&mut self, tag: u64, pc: Pc) -> (InsertPriority, u32) {
        let sig = hash_pc(pc, self.sig_bits);
        self.ghost.note_fill(tag);
        if self.shct[sig as usize].value() == 0 {
            (InsertPriority::Distant, sig | PREDICTED_BIT)
        } else {
            (InsertPriority::Normal, sig)
        }
    }

    /// First re-reference trains the SHCT positively.
    fn on_hit(&mut self, state: &mut u32) {
        if *state & OUTCOME_BIT == 0 {
            *state |= OUTCOME_BIT;
            let sig = (*state & SIG_MASK) as usize;
            self.shct[sig].increment();
        }
    }

    /// Eviction without re-reference trains the SHCT negatively and
    /// resolves the accuracy of a distant prediction.
    fn on_evict(&mut self, tag: u64, state: u32, hits: u64) {
        let sig = (state & SIG_MASK) as usize;
        if state & OUTCOME_BIT == 0 {
            self.shct[sig].decrement();
        }
        if hits == 0 {
            self.doa_evictions += 1;
        }
        if state & PREDICTED_BIT != 0 {
            if hits == 0 {
                // Unresolved: track the counterfactual stay in the ghost.
                self.ghost.note_bypass(tag);
            } else {
                // Hit while (briefly) resident: clearly wrong.
                self.mispredicted_resident += 1;
            }
        }
    }

    fn report(&self) -> AccuracyReport {
        let correct = self.ghost.resolved_correct();
        let mispredictions = self.ghost.mispredictions + self.mispredicted_resident;
        AccuracyReport {
            predictions: self.ghost.predictions + self.mispredicted_resident,
            correct,
            mispredictions,
            // Every DOA eviction of a predicted entry is also in `ghost`;
            // unpredicted DOAs are the difference.
            true_doas: correct + (self.doa_evictions - self.ghost.predictions),
        }
    }
}

/// SHiP applied to the LLC (the paper's SHiP-LLC configuration).
#[derive(Debug)]
pub struct ShipLlc {
    core: ShipCore,
}

impl ShipLlc {
    /// The paper's SHiP-LLC: 14-bit signatures, 16K-entry SHCT of 3-bit
    /// counters, for the paper's 2 MB 16-way LLC.
    pub fn paper_default() -> Self {
        ShipLlc { core: ShipCore::new(14, 3, 2048, 16) }
    }

    /// The paper's SHiP-LLC sized for an arbitrary LLC.
    pub fn for_cache(llc: &CacheConfig) -> Self {
        ShipLlc { core: ShipCore::new(14, 3, llc.sets(), u64::from(llc.ways)) }
    }

    /// Custom signature/counter geometry.
    pub fn new(sig_bits: u32, counter_bits: u32, llc: &CacheConfig) -> Self {
        ShipLlc { core: ShipCore::new(sig_bits, counter_bits, llc.sets(), u64::from(llc.ways)) }
    }
}

impl LlcPolicy for ShipLlc {
    #[inline]
    fn policy_name(&self) -> &'static str {
        "SHiP-LLC"
    }

    #[inline]
    fn accuracy_report(&self) -> Option<AccuracyReport> {
        Some(self.core.report())
    }

    #[inline]
    fn on_lookup(&mut self, block: BlockAddr, _hit: bool) {
        self.core.on_lookup(block.raw());
    }

    #[inline]
    fn on_fill(&mut self, block: BlockAddr, pc: Pc) -> BlockFillDecision {
        let (priority, state) = self.core.on_fill(block.raw(), pc);
        BlockFillDecision::Allocate { priority, state }
    }

    #[inline]
    fn on_hit(&mut self, _block: BlockAddr, state: &mut u32) {
        self.core.on_hit(state);
    }

    #[inline]
    fn on_evict(&mut self, evicted: EvictedBlock) {
        self.core.on_evict(evicted.block.raw(), evicted.state, evicted.life.hits);
    }
}

/// SHiP adapted to the last-level TLB (the paper's SHiP-TLB configuration).
#[derive(Debug)]
pub struct ShipTlb {
    core: ShipCore,
}

impl ShipTlb {
    /// The paper's SHiP-TLB: 8-bit PC signatures (storage comparable to
    /// dpPred), 3-bit counters, for the paper's 1024-entry 8-way LLT.
    pub fn paper_default() -> Self {
        ShipTlb { core: ShipCore::new(8, 3, 128, 8) }
    }

    /// The paper's SHiP-TLB sized for an arbitrary LLT.
    pub fn for_tlb(tlb: &TlbConfig) -> Self {
        ShipTlb { core: ShipCore::new(8, 3, u64::from(tlb.sets()), u64::from(tlb.ways)) }
    }

    /// Custom signature/counter geometry.
    pub fn new(sig_bits: u32, counter_bits: u32, tlb: &TlbConfig) -> Self {
        ShipTlb {
            core: ShipCore::new(sig_bits, counter_bits, u64::from(tlb.sets()), u64::from(tlb.ways)),
        }
    }
}

impl LltPolicy for ShipTlb {
    #[inline]
    fn policy_name(&self) -> &'static str {
        "SHiP-TLB"
    }

    #[inline]
    fn accuracy_report(&self) -> Option<AccuracyReport> {
        Some(self.core.report())
    }

    #[inline]
    fn on_lookup(&mut self, vpn: Vpn, _hit: bool) {
        self.core.on_lookup(vpn.raw());
    }

    #[inline]
    fn on_fill(&mut self, vpn: Vpn, _pfn: Pfn, pc: Pc) -> PageFillDecision {
        let (priority, state) = self.core.on_fill(vpn.raw(), pc);
        PageFillDecision::Allocate { priority, state }
    }

    #[inline]
    fn on_hit(&mut self, _vpn: Vpn, state: &mut u32) {
        self.core.on_hit(state);
    }

    #[inline]
    fn on_evict(&mut self, evicted: EvictedPage) {
        self.core.on_evict(evicted.vpn.raw(), evicted.state, evicted.life.hits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_memsim::set_assoc::LineLife;

    fn doa_life() -> LineLife {
        LineLife { fill_seq: 0, last_hit_seq: 0, hits: 0 }
    }

    #[test]
    fn cold_signature_inserts_normal() {
        let mut ship = ShipLlc::paper_default();
        let decision = ship.on_fill(BlockAddr::new(1), Pc::new(0x400));
        assert!(matches!(
            decision,
            BlockFillDecision::Allocate { priority: InsertPriority::Normal, .. }
        ));
    }

    /// Evict a DOA block brought by `pc` enough times to pin the
    /// signature's counter at zero (init is mid-range).
    fn train_distant(ship: &mut ShipLlc, pc: Pc) {
        for i in 0..8u64 {
            let BlockFillDecision::Allocate { state, .. } = ship.on_fill(BlockAddr::new(i), pc)
            else {
                panic!("SHiP never bypasses");
            };
            ship.on_evict(EvictedBlock {
                block: BlockAddr::new(i),
                state,
                life: doa_life(),
                by_invalidation: false,
            });
        }
    }

    #[test]
    fn repeated_doa_signature_becomes_distant() {
        let mut ship = ShipLlc::paper_default();
        let pc = Pc::new(0x400);
        // One DOA eviction is not enough from the mid-range init.
        let BlockFillDecision::Allocate { state, .. } = ship.on_fill(BlockAddr::new(1), pc) else {
            panic!("SHiP never bypasses");
        };
        ship.on_evict(EvictedBlock {
            block: BlockAddr::new(1),
            state,
            life: doa_life(),
            by_invalidation: false,
        });
        assert!(matches!(
            ship.on_fill(BlockAddr::new(2), pc),
            BlockFillDecision::Allocate { priority: InsertPriority::Normal, .. }
        ));
        train_distant(&mut ship, pc);
        assert!(matches!(
            ship.on_fill(BlockAddr::new(2), pc),
            BlockFillDecision::Allocate { priority: InsertPriority::Distant, .. }
        ));
    }

    #[test]
    fn rereference_trains_positively() {
        let mut ship = ShipLlc::paper_default();
        let pc = Pc::new(0x400);
        train_distant(&mut ship, pc);
        // A re-referenced block pulls the counter off zero again.
        let BlockFillDecision::Allocate { mut state, .. } = ship.on_fill(BlockAddr::new(1), pc)
        else {
            panic!("SHiP never bypasses");
        };
        ship.on_hit(BlockAddr::new(1), &mut state);
        assert!(state & OUTCOME_BIT != 0);
        // A second hit must not double-train.
        ship.on_hit(BlockAddr::new(1), &mut state);
        ship.on_evict(EvictedBlock {
            block: BlockAddr::new(1),
            state,
            life: LineLife { fill_seq: 0, last_hit_seq: 2, hits: 2 },
            by_invalidation: false,
        });
        let decision = ship.on_fill(BlockAddr::new(3), pc);
        assert!(
            matches!(
                decision,
                BlockFillDecision::Allocate { priority: InsertPriority::Normal, .. }
            ),
            "a reuse observation must lift the signature out of distant"
        );
    }

    #[test]
    fn accuracy_accounting() {
        let mut ship = ShipTlb::paper_default();
        let pc = Pc::new(0x400);
        // Train to distant (init is mid-range: 4 net DOA evictions).
        for i in 0..8u64 {
            let PageFillDecision::Allocate { state, .. } =
                ship.on_fill(Vpn::new(i), Pfn::new(i), pc)
            else {
                panic!()
            };
            ship.on_evict(EvictedPage {
                vpn: Vpn::new(i),
                pfn: Pfn::new(i),
                state,
                life: doa_life(),
            });
        }
        // Distant-predicted fill that is truly DOA: correct.
        let PageFillDecision::Allocate { priority, state } =
            ship.on_fill(Vpn::new(99), Pfn::new(99), pc)
        else {
            panic!()
        };
        assert_eq!(priority, InsertPriority::Distant);
        ship.on_evict(EvictedPage {
            vpn: Vpn::new(99),
            pfn: Pfn::new(99),
            state,
            life: doa_life(),
        });
        let report = ship.accuracy_report().unwrap();
        assert!(report.predictions >= 1);
        assert_eq!(report.correct, report.predictions, "all predictions were truly DOA");
        assert_eq!(report.mispredictions, 0);
        assert_eq!(report.true_doas, 9, "eight training DOAs plus the predicted one");
        assert!((report.accuracy() - 1.0).abs() < 1e-12);
        assert!(report.coverage() < 1.0, "early unpredicted DOAs cap coverage");
    }

    #[test]
    #[should_panic(expected = "signature width")]
    fn oversize_signature_rejected() {
        ShipLlc::new(17, 3, &dpc_types::SystemConfig::paper_baseline().llc);
    }
}
