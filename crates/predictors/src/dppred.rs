//! **dpPred** — the paper's dead-on-arrival page predictor for the
//! last-level TLB (Section V-A).
//!
//! Components, with the paper's default sizes:
//!
//! * 7 bits of metadata per LLT entry: a 6-bit hash of the PC that brought
//!   the entry, plus the `Accessed` bit (the simulator derives `Accessed`
//!   from the entry's hit count; the PC hash lives in the entry's policy
//!   state);
//! * **pHIST**: a 1024-entry two-dimensional table of 3-bit saturating
//!   counters indexed by `h6(PC) × h4(VPN)`;
//! * a prediction threshold of 6: at fill time the counter must *exceed*
//!   the threshold to predict DOA and bypass the allocation;
//! * a 2-entry **shadow table** holding the VPN and translation of recently
//!   bypassed pages. It serves as a victim buffer (a shadow hit returns the
//!   translation without a page walk) and as negative feedback: a shadow
//!   hit means the bypass was wrong, so every pHIST entry for that VPN
//!   hash is flushed (one contiguous row under the VPN-major layout,
//!   batch-cleared by the `simd` kernels).
//!
//! Accuracy/coverage (paper Table VI) is measured with a
//! [`GhostTracker`] — since bypassed pages have
//! no observable LLT stay.

use crate::ghost::GhostTracker;
use dpc_memsim::policy::{
    AccuracyReport, EvictedPage, InsertPriority, LltPolicy, PageFillDecision,
};
use dpc_types::hash::{hash_pc, hash_vpn};
use dpc_types::{invariant, Pc, Pfn, SatCounter, TlbConfig, Vpn};
use std::collections::VecDeque;

/// Configuration of [`DpPred`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DpPredConfig {
    /// Bits of PC hash indexing pHIST's first dimension (paper: 6).
    pub pc_bits: u32,
    /// Bits of VPN hash indexing pHIST's second dimension (paper: 4).
    /// Zero selects the PC-only indexing variant of Fig. 11b.
    pub vpn_bits: u32,
    /// Width of the pHIST saturating counters (paper: 3).
    pub counter_bits: u32,
    /// Prediction threshold: DOA is predicted when the counter strictly
    /// exceeds this (paper: 6).
    pub threshold: u8,
    /// Shadow-table capacity (paper: 2; Fig. 11c studies 4; 0 disables the
    /// shadow — the paper's dpPred−SH).
    pub shadow_entries: usize,
    /// Geometry of the LLT the predictor serves, for ghost-FIFO accuracy
    /// accounting.
    pub llt_sets: u64,
    /// LLT associativity.
    pub llt_ways: u64,
}

impl DpPredConfig {
    /// The paper's default configuration for a 1024-entry 8-way LLT.
    pub fn paper_default() -> Self {
        DpPredConfig {
            pc_bits: 6,
            vpn_bits: 4,
            counter_bits: 3,
            threshold: 6,
            shadow_entries: 2,
            llt_sets: 128,
            llt_ways: 8,
        }
    }

    /// Configuration adapted to a given LLT geometry.
    pub fn for_tlb(tlb: &TlbConfig) -> Self {
        DpPredConfig {
            llt_sets: u64::from(tlb.sets()),
            llt_ways: u64::from(tlb.ways),
            ..Self::paper_default()
        }
    }

    /// pHIST entry count (`2^(pc_bits + vpn_bits)`).
    pub fn phist_entries(&self) -> usize {
        1usize << (self.pc_bits + self.vpn_bits)
    }
}

impl Default for DpPredConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[derive(Clone, Copy, Debug)]
struct ShadowEntry {
    vpn: Vpn,
    pfn: Pfn,
    pc_hash: u32,
}

/// The dead-page predictor.
#[derive(Debug)]
pub struct DpPred {
    config: DpPredConfig,
    phist: Vec<SatCounter>,
    shadow: VecDeque<ShadowEntry>,
    ghost: GhostTracker,
    /// PC hash of the most recent bypass decision, parked until the
    /// system's `on_bypass` callback stores it in the shadow entry.
    last_bypass_pc_hash: u32,
    /// DOA evictions the predictor failed to predict (for coverage).
    unpredicted_doas: u64,
    /// pHIST column flushes triggered by shadow hits.
    pub negative_feedback_events: u64,
}

impl DpPred {
    /// Builds a dpPred with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `pc_bits` is zero or the counter width is outside 1..=8.
    pub fn new(config: DpPredConfig) -> Self {
        assert!(config.pc_bits > 0, "dpPred requires a PC hash dimension");
        DpPred {
            phist: vec![SatCounter::new(config.counter_bits); config.phist_entries()],
            shadow: VecDeque::with_capacity(config.shadow_entries),
            ghost: GhostTracker::new(config.llt_sets, config.llt_ways),
            last_bypass_pc_hash: 0,
            unpredicted_doas: 0,
            negative_feedback_events: 0,
            config,
        }
    }

    /// The paper's default dpPred (1024-entry pHIST, 2-entry shadow).
    pub fn paper_default() -> Self {
        Self::new(DpPredConfig::paper_default())
    }

    /// The paper's dpPred−SH ablation: shadow table disabled.
    pub fn without_shadow() -> Self {
        Self::new(DpPredConfig { shadow_entries: 0, ..DpPredConfig::paper_default() })
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &DpPredConfig {
        &self.config
    }

    #[inline]
    fn vpn_hash(&self, vpn: Vpn) -> u32 {
        if self.config.vpn_bits == 0 {
            0
        } else {
            hash_vpn(vpn, self.config.vpn_bits)
        }
    }

    #[inline]
    fn index(&self, pc_hash: u32, vpn_hash: u32) -> usize {
        // VPN-major layout: `vpn_hash` selects a row of 2^pc_bits
        // counters, `pc_hash` the column within it. A bijective
        // relabeling of the 2-D table (the paper specifies the index
        // function only as h6(PC) × h4(VPN)), chosen so the
        // negative-feedback flush of a VPN hash clears one contiguous
        // row instead of 2^pc_bits strided entries.
        let idx = ((vpn_hash << self.config.pc_bits) | pc_hash) as usize;
        invariant!(idx < self.phist.len(), "pHIST index {idx} out of range");
        idx
    }

    /// Flushes the pHIST entries corresponding to a VPN hash — the
    /// negative-feedback action on a shadow hit (paper Fig. 6a). With
    /// PC-only indexing the single entry for the stored PC hash is cleared
    /// instead. Under the VPN-major layout of [`Self::index`] the flush is
    /// one contiguous row, batch-cleared by [`crate::simd::clear_counters`].
    #[inline]
    fn negative_feedback(&mut self, vpn_hash: u32, pc_hash: u32) {
        self.negative_feedback_events += 1;
        if self.config.vpn_bits == 0 {
            invariant!(
                (pc_hash as usize) < self.phist.len(),
                "pc_hash {pc_hash} exceeds pHIST ({} entries)",
                self.phist.len()
            );
            self.phist[pc_hash as usize].clear();
            return;
        }
        let row = 1usize << self.config.pc_bits;
        let start = (vpn_hash as usize) << self.config.pc_bits;
        invariant!(
            start + row <= self.phist.len(),
            "pHIST row for vpn_hash {vpn_hash} exceeds the table"
        );
        crate::simd::clear_counters(&mut self.phist[start..start + row]);
    }
}

impl LltPolicy for DpPred {
    #[inline]
    fn policy_name(&self) -> &'static str {
        "dpPred"
    }

    #[inline]
    fn accuracy_report(&self) -> Option<AccuracyReport> {
        let correct = self.ghost.resolved_correct();
        Some(AccuracyReport {
            predictions: self.ghost.predictions,
            correct,
            mispredictions: self.ghost.mispredictions,
            true_doas: correct + self.unpredicted_doas,
        })
    }

    #[inline]
    fn on_lookup(&mut self, vpn: Vpn, _hit: bool) {
        self.ghost.note_lookup(vpn.raw());
    }

    #[inline]
    fn shadow_lookup(&mut self, vpn: Vpn) -> Option<Pfn> {
        let pos = self.shadow.iter().position(|e| e.vpn == vpn)?;
        let entry = self.shadow.remove(pos)?;
        let vpn_hash = self.vpn_hash(vpn);
        self.negative_feedback(vpn_hash, entry.pc_hash);
        Some(entry.pfn)
    }

    #[inline]
    fn on_fill(&mut self, vpn: Vpn, _pfn: Pfn, pc: Pc) -> PageFillDecision {
        let pc_hash = hash_pc(pc, self.config.pc_bits);
        let vpn_hash = self.vpn_hash(vpn);
        let idx = self.index(pc_hash, vpn_hash);
        if self.phist[idx].exceeds(self.config.threshold) {
            self.last_bypass_pc_hash = pc_hash;
            self.ghost.note_bypass(vpn.raw());
            PageFillDecision::Bypass
        } else {
            self.ghost.note_fill(vpn.raw());
            PageFillDecision::Allocate { priority: InsertPriority::Normal, state: pc_hash }
        }
    }

    #[inline]
    fn on_bypass(&mut self, vpn: Vpn, pfn: Pfn) {
        if self.config.shadow_entries == 0 {
            return;
        }
        // A page bypassed again refreshes its existing entry (the shadow
        // holds at most one translation per VPN).
        if let Some(pos) = self.shadow.iter().position(|e| e.vpn == vpn) {
            self.shadow.remove(pos);
        } else if self.shadow.len() >= self.config.shadow_entries {
            self.shadow.pop_front();
        }
        self.shadow.push_back(ShadowEntry { vpn, pfn, pc_hash: self.last_bypass_pc_hash });
        invariant!(
            self.shadow.len() <= self.config.shadow_entries,
            "shadow occupancy {} exceeds the paper's {}-entry budget",
            self.shadow.len(),
            self.config.shadow_entries
        );
    }

    #[inline]
    fn refill_state(&mut self, vpn: Vpn, pc: Pc) -> u32 {
        self.ghost.note_fill(vpn.raw());
        hash_pc(pc, self.config.pc_bits)
    }

    #[inline]
    fn on_evict(&mut self, evicted: EvictedPage) {
        let pc_hash = evicted.state;
        let vpn_hash = self.vpn_hash(evicted.vpn);
        let idx = self.index(pc_hash, vpn_hash);
        if evicted.accessed() {
            // Not a DOA: clear the counter (paper Fig. 6c).
            self.phist[idx].clear();
        } else {
            self.phist[idx].increment();
            self.unpredicted_doas += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doa_evict(pred: &mut DpPred, vpn: Vpn, pc_hash: u32) {
        pred.on_evict(EvictedPage {
            vpn,
            pfn: Pfn::new(1),
            state: pc_hash,
            life: dpc_memsim::set_assoc::LineLife { fill_seq: 0, last_hit_seq: 0, hits: 0 },
        });
    }

    fn live_evict(pred: &mut DpPred, vpn: Vpn, pc_hash: u32) {
        pred.on_evict(EvictedPage {
            vpn,
            pfn: Pfn::new(1),
            state: pc_hash,
            life: dpc_memsim::set_assoc::LineLife { fill_seq: 0, last_hit_seq: 5, hits: 2 },
        });
    }

    #[test]
    fn trains_to_bypass_after_repeated_doas() {
        let mut pred = DpPred::paper_default();
        let pc = Pc::new(0x400123);
        let vpn = Vpn::new(0x99);
        let pc_hash = hash_pc(pc, 6);
        // Threshold 6: the 7th DOA eviction makes the counter exceed it.
        for i in 0..7 {
            assert!(
                matches!(pred.on_fill(vpn, Pfn::new(1), pc), PageFillDecision::Allocate { .. }),
                "fill {i} must still allocate"
            );
            doa_evict(&mut pred, vpn, pc_hash);
        }
        assert_eq!(pred.on_fill(vpn, Pfn::new(1), pc), PageFillDecision::Bypass);
    }

    #[test]
    fn live_eviction_clears_training() {
        let mut pred = DpPred::paper_default();
        let pc = Pc::new(0x400123);
        let vpn = Vpn::new(0x99);
        let pc_hash = hash_pc(pc, 6);
        for _ in 0..7 {
            pred.on_fill(vpn, Pfn::new(1), pc);
            doa_evict(&mut pred, vpn, pc_hash);
        }
        live_evict(&mut pred, vpn, pc_hash);
        assert!(
            matches!(pred.on_fill(vpn, Pfn::new(1), pc), PageFillDecision::Allocate { .. }),
            "a live eviction must reset the counter"
        );
    }

    #[test]
    fn shadow_serves_and_feeds_back() {
        let mut pred = DpPred::paper_default();
        let pc = Pc::new(0x400123);
        let vpn = Vpn::new(0x99);
        let pc_hash = hash_pc(pc, 6);
        for _ in 0..7 {
            pred.on_fill(vpn, Pfn::new(7), pc);
            doa_evict(&mut pred, vpn, pc_hash);
        }
        assert_eq!(pred.on_fill(vpn, Pfn::new(7), pc), PageFillDecision::Bypass);
        pred.on_bypass(vpn, Pfn::new(7));
        // The bypassed page is re-referenced: shadow hit.
        assert_eq!(pred.shadow_lookup(vpn), Some(Pfn::new(7)));
        assert_eq!(pred.negative_feedback_events, 1);
        // Negative feedback flushed the column: next fill allocates.
        assert!(matches!(pred.on_fill(vpn, Pfn::new(7), pc), PageFillDecision::Allocate { .. }));
        // The shadow entry was consumed.
        assert_eq!(pred.shadow_lookup(vpn), None);
    }

    #[test]
    fn negative_feedback_spares_other_vpn_rows() {
        use dpc_types::hash::hash_vpn;
        let mut pred = DpPred::paper_default();
        let pc = Pc::new(0x400123);
        let pc_hash = hash_pc(pc, 6);
        let vpn_a = Vpn::new(0x99);
        // A second VPN whose 4-bit hash differs (a different pHIST row).
        let vpn_b = (1u64..)
            .map(Vpn::new)
            .find(|v| hash_vpn(*v, 4) != hash_vpn(vpn_a, 4))
            .expect("some VPN hashes differently");
        for _ in 0..7 {
            pred.on_fill(vpn_a, Pfn::new(7), pc);
            doa_evict(&mut pred, vpn_a, pc_hash);
            pred.on_fill(vpn_b, Pfn::new(8), pc);
            doa_evict(&mut pred, vpn_b, pc_hash);
        }
        assert_eq!(pred.on_fill(vpn_a, Pfn::new(7), pc), PageFillDecision::Bypass);
        pred.on_bypass(vpn_a, Pfn::new(7));
        // Shadow hit on A flushes exactly A's row...
        assert_eq!(pred.shadow_lookup(vpn_a), Some(Pfn::new(7)));
        assert!(matches!(pred.on_fill(vpn_a, Pfn::new(7), pc), PageFillDecision::Allocate { .. }));
        // ...while B's fully-trained row keeps predicting.
        assert_eq!(pred.on_fill(vpn_b, Pfn::new(8), pc), PageFillDecision::Bypass);
    }

    #[test]
    fn shadow_is_fifo_bounded() {
        let mut pred = DpPred::paper_default();
        pred.on_bypass(Vpn::new(1), Pfn::new(11));
        pred.on_bypass(Vpn::new(2), Pfn::new(22));
        pred.on_bypass(Vpn::new(3), Pfn::new(33));
        assert_eq!(pred.shadow_lookup(Vpn::new(1)), None, "oldest entry displaced");
        assert_eq!(pred.shadow_lookup(Vpn::new(2)), Some(Pfn::new(22)));
        assert_eq!(pred.shadow_lookup(Vpn::new(3)), Some(Pfn::new(33)));
    }

    #[test]
    fn without_shadow_never_serves() {
        let mut pred = DpPred::without_shadow();
        pred.on_bypass(Vpn::new(1), Pfn::new(11));
        assert_eq!(pred.shadow_lookup(Vpn::new(1)), None);
    }

    #[test]
    fn pc_only_variant_works() {
        let mut pred =
            DpPred::new(DpPredConfig { pc_bits: 10, vpn_bits: 0, ..DpPredConfig::paper_default() });
        assert_eq!(pred.config().phist_entries(), 1024);
        let pc = Pc::new(0x400123);
        let pc_hash = hash_pc(pc, 10);
        for _ in 0..7 {
            pred.on_fill(Vpn::new(5), Pfn::new(1), pc);
            doa_evict(&mut pred, Vpn::new(5), pc_hash);
        }
        assert_eq!(pred.on_fill(Vpn::new(5), Pfn::new(1), pc), PageFillDecision::Bypass);
    }

    #[test]
    fn accuracy_report_tracks_ghosts() {
        let mut pred = DpPred::paper_default();
        let pc = Pc::new(0x400123);
        let pc_hash = hash_pc(pc, 6);
        for _ in 0..7 {
            pred.on_fill(Vpn::new(5), Pfn::new(1), pc);
            doa_evict(&mut pred, Vpn::new(5), pc_hash);
        }
        assert_eq!(pred.on_fill(Vpn::new(5), Pfn::new(1), pc), PageFillDecision::Bypass);
        let report = pred.accuracy_report().expect("dpPred reports accuracy");
        assert_eq!(report.predictions, 1);
        // Unresolved ghost counts as correct at end of run.
        assert_eq!(report.correct, 1);
        assert_eq!(report.true_doas, 1 + 7);
    }

    #[test]
    fn paper_default_geometry() {
        let pred = DpPred::paper_default();
        assert_eq!(pred.config().phist_entries(), 1024);
        assert_eq!(pred.config().threshold, 6);
        assert_eq!(pred.config().shadow_entries, 2);
        assert_eq!(pred.policy_name(), "dpPred");
    }
}
