//! The storage-overhead model (paper Sections V-D and VI-D).
//!
//! Reproduces the paper's byte budgets analytically:
//!
//! * baseline LLT: 94-bit entries (29-bit VPN tag for 48-bit VAs, 39-bit
//!   PFN for 51-bit PAs, 12-bit ASID, 4-bit MPK, 10 metadata bits) →
//!   11.75 KB for 1024 entries;
//! * dpPred: 7 bits/entry + 1024 × 3-bit pHIST + 2 × 13 B shadow →
//!   **1306 B**;
//! * cbPred: 2 bits/block + 4096 × 3-bit bHIST + 8 × 39-bit PFQ →
//!   **≈ 9.54 KB**; combined ≈ **10.81 KB**;
//! * SHiP (LLC): 14-bit signature + outcome bit per block + 16K × 3-bit
//!   SHCT → **66 KB**;
//! * AIP (LLC): 21 bits/block + 256 × 256 × 5-bit table → **124 KB**.

use dpc_types::{CacheConfig, TlbConfig};

/// Bits in a baseline TLB entry per the paper's analysis.
pub const TLB_ENTRY_BITS: u64 = 94;
/// Bytes per dpPred shadow-table entry (VPN + translation ≈ 13 B).
pub const SHADOW_ENTRY_BYTES: u64 = 13;

/// dpPred's total budget at the paper geometry (1024-entry LLT, 6-bit PC
/// hash, 4 VPN bits, 3-bit counters, 2 shadow entries): 896 B of entry
/// metadata + 384 B pHIST + 26 B shadow = **1306 B** (Section V-D).
///
/// Re-derived for the multi-page-size LLT and unchanged: a huge page
/// occupies one LLT entry and one prediction unit, so the per-entry
/// metadata, pHIST geometry and shadow table are all shared across page
/// sizes — no per-size replication. (The 2-bit size tag in the unified
/// LLT entry is baseline TLB state, not predictor state: real split-size
/// L2 TLBs carry it with or without dpPred.) Pinned by the
/// `budget::counter-width` rule of `cargo xtask lint`.
pub const DPPRED_BUDGET_BYTES: u64 = 1306;

/// Storage budget of one predictor configuration, in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageBudget {
    /// Metadata added to the host structure's entries.
    pub entry_metadata_bytes: u64,
    /// Dedicated table storage (pHIST/bHIST/SHCT/AIP table).
    pub table_bytes: u64,
    /// Auxiliary structures (shadow table, PFQ).
    pub aux_bytes: u64,
}

impl StorageBudget {
    /// Total bytes.
    pub const fn total(&self) -> u64 {
        self.entry_metadata_bytes + self.table_bytes + self.aux_bytes
    }

    /// Total in KiB.
    pub fn total_kib(&self) -> f64 {
        self.total() as f64 / 1024.0
    }
}

const fn bits_to_bytes(bits: u64) -> u64 {
    bits / 8 + if !bits.is_multiple_of(8) { 1 } else { 0 }
}

/// Baseline storage of a TLB (no predictor), in bytes.
pub fn tlb_baseline_bytes(tlb: &TlbConfig) -> u64 {
    bits_to_bytes(u64::from(tlb.entries) * TLB_ENTRY_BITS)
}

/// dpPred's budget: `pc_bits + 1` metadata bits per LLT entry, the pHIST,
/// and the shadow table.
pub fn dppred_bytes(
    tlb: &TlbConfig,
    pc_bits: u32,
    vpn_bits: u32,
    counter_bits: u32,
    shadow_entries: u64,
) -> StorageBudget {
    StorageBudget {
        entry_metadata_bytes: bits_to_bytes(u64::from(tlb.entries) * u64::from(pc_bits + 1)),
        table_bytes: bits_to_bytes((1u64 << (pc_bits + vpn_bits)) * u64::from(counter_bits)),
        aux_bytes: shadow_entries * SHADOW_ENTRY_BYTES,
    }
}

/// cbPred's budget: 2 bits per LLC block (DP + Accessed), the bHIST, and
/// the PFQ of 39-bit PFNs.
pub fn cbpred_bytes(
    llc: &CacheConfig,
    bhist_entries: u64,
    counter_bits: u32,
    pfq_entries: u64,
) -> StorageBudget {
    StorageBudget {
        entry_metadata_bytes: bits_to_bytes(llc.blocks() * 2),
        table_bytes: bits_to_bytes(bhist_entries * u64::from(counter_bits)),
        aux_bytes: bits_to_bytes(pfq_entries * 39),
    }
}

/// SHiP-LLC's budget: signature + outcome bit per block plus the SHCT.
pub fn ship_llc_bytes(llc: &CacheConfig, sig_bits: u32, counter_bits: u32) -> StorageBudget {
    StorageBudget {
        entry_metadata_bytes: bits_to_bytes(llc.blocks() * u64::from(sig_bits + 1)),
        table_bytes: bits_to_bytes((1u64 << sig_bits) * u64::from(counter_bits)),
        aux_bytes: 0,
    }
}

/// SHiP-TLB's budget: signature + outcome bit per LLT entry plus the SHCT.
pub fn ship_tlb_bytes(tlb: &TlbConfig, sig_bits: u32, counter_bits: u32) -> StorageBudget {
    StorageBudget {
        entry_metadata_bytes: bits_to_bytes(u64::from(tlb.entries) * u64::from(sig_bits + 1)),
        table_bytes: bits_to_bytes((1u64 << sig_bits) * u64::from(counter_bits)),
        aux_bytes: 0,
    }
}

/// AIP-LLC's budget: 21 bits per block plus the 256 × 256 × 5-bit table.
pub fn aip_llc_bytes(llc: &CacheConfig) -> StorageBudget {
    StorageBudget {
        entry_metadata_bytes: bits_to_bytes(llc.blocks() * 21),
        table_bytes: bits_to_bytes(256 * 256 * 5),
        aux_bytes: 0,
    }
}

/// AIP-TLB's budget: 21 bits per LLT entry plus the table.
pub fn aip_tlb_bytes(tlb: &TlbConfig) -> StorageBudget {
    StorageBudget {
        entry_metadata_bytes: bits_to_bytes(u64::from(tlb.entries) * 21),
        table_bytes: bits_to_bytes(256 * 256 * 5),
        aux_bytes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::SystemConfig;

    #[test]
    fn paper_baseline_llt_is_11_75_kib() {
        let config = SystemConfig::paper_baseline();
        let bytes = tlb_baseline_bytes(&config.l2_tlb);
        assert_eq!(bytes, 12032); // 11.75 KiB
        assert!((bytes as f64 / 1024.0 - 11.75).abs() < 0.01);
    }

    #[test]
    fn paper_dppred_is_1306_bytes() {
        let config = SystemConfig::paper_baseline();
        let b = dppred_bytes(&config.l2_tlb, 6, 4, 3, 2);
        assert_eq!(b.entry_metadata_bytes, 896);
        assert_eq!(b.table_bytes, 384);
        assert_eq!(b.aux_bytes, 26);
        assert_eq!(b.total(), 1306); // paper Section V-D
        assert_eq!(b.total(), DPPRED_BUDGET_BYTES);
    }

    #[test]
    fn dppred_budget_is_page_size_independent() {
        // The structures dpPred adds are keyed by (hashed) LLT keys and
        // prediction units, never by 4 KB frames, so enabling huge pages
        // changes no term of the budget: same LLT entry count, same
        // pHIST geometry, same shadow capacity.
        let config = SystemConfig::paper_baseline();
        for policy in [
            dpc_types::AllocPolicy::Base4K,
            dpc_types::AllocPolicy::Uniform(dpc_types::PageSize::Size2M),
            dpc_types::AllocPolicy::Uniform(dpc_types::PageSize::Size1G),
            dpc_types::AllocPolicy::Promote2M { threshold: 64 },
        ] {
            let sized = config.with_page_policy(policy);
            let b = dppred_bytes(&sized.l2_tlb, 6, 4, 3, 2);
            assert_eq!(b.total(), DPPRED_BUDGET_BYTES, "{policy:?}");
        }
    }

    #[test]
    fn paper_cbpred_is_about_9_54_kib() {
        let config = SystemConfig::paper_baseline();
        let b = cbpred_bytes(&config.llc, 4096, 3, 8);
        assert_eq!(b.entry_metadata_bytes, 8192);
        assert_eq!(b.table_bytes, 1536);
        assert_eq!(b.aux_bytes, 39);
        assert!((b.total_kib() - 9.54).abs() < 0.03, "got {}", b.total_kib());
    }

    #[test]
    fn combined_is_about_10_81_kib() {
        let config = SystemConfig::paper_baseline();
        let total = dppred_bytes(&config.l2_tlb, 6, 4, 3, 2).total()
            + cbpred_bytes(&config.llc, 4096, 3, 8).total();
        assert!((total as f64 / 1024.0 - 10.81).abs() < 0.05, "got {}", total as f64 / 1024.0);
    }

    #[test]
    fn ship_llc_is_about_66_kib() {
        let config = SystemConfig::paper_baseline();
        let b = ship_llc_bytes(&config.llc, 14, 3);
        assert!((b.total_kib() - 66.0).abs() < 1.0, "got {}", b.total_kib());
    }

    #[test]
    fn aip_llc_is_about_124_kib() {
        let config = SystemConfig::paper_baseline();
        let b = aip_llc_bytes(&config.llc);
        assert!((b.total_kib() - 124.0).abs() < 1.0, "got {}", b.total_kib());
    }

    #[test]
    fn predictor_storage_ratio_matches_paper_claim() {
        // "1/11th - 1/6th of the typical storage overhead"
        let config = SystemConfig::paper_baseline();
        let ours = (dppred_bytes(&config.l2_tlb, 6, 4, 3, 2).total()
            + cbpred_bytes(&config.llc, 4096, 3, 8).total()) as f64;
        let aip = aip_llc_bytes(&config.llc).total() as f64;
        let ship = ship_llc_bytes(&config.llc, 14, 3).total() as f64;
        assert!(aip / ours > 10.0 && aip / ours < 13.0);
        assert!(ship / ours > 5.0 && ship / ours < 7.0);
    }

    #[test]
    fn tlb_predictor_budgets_are_small() {
        let config = SystemConfig::paper_baseline();
        let ship = ship_tlb_bytes(&config.l2_tlb, 8, 3);
        let aip = aip_tlb_bytes(&config.l2_tlb);
        // SHiP-TLB is sized to be comparable to dpPred (~1.2 KiB).
        assert!(ship.total_kib() < 2.0, "got {}", ship.total_kib());
        // AIP-TLB's 21 bits/entry + table dwarf dpPred.
        assert!(aip.total_kib() > 20.0, "got {}", aip.total_kib());
    }
}
