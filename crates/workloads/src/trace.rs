//! Trace capture and replay.
//!
//! Any [`Workload`]'s event stream can be captured to a compact binary
//! trace file with [`TraceWriter`] and replayed later with
//! [`TraceWorkload`] — useful for distributing reproducible inputs,
//! diffing generator changes, or feeding externally collected traces
//! (e.g. converted Pin/DynamoRIO output) into the simulator.
//!
//! # Format
//!
//! Little-endian binary: an 8-byte magic, then the payload.
//!
//! **v2** (`b"DPCTRC2\n"`, written by [`TraceWriter`]) is the serialized
//! struct-of-arrays [`EventStream`]: three `u64` counts (events, memory
//! events, compute events) followed by the tag, pc, vaddr, and ops
//! arrays. See [`dpc_types::stream`] for the exact layout and tag table.
//!
//! **v1** (`b"DPCTRC1\n"`, legacy) is a per-record tag/payload stream:
//!
//! | tag (u8) | payload | meaning |
//! |---|---|---|
//! | 0 | `pc: u64, vaddr: u64` | independent load |
//! | 1 | `pc: u64, vaddr: u64` | store |
//! | 2 | `pc: u64, vaddr: u64` | dependent load |
//! | 3 | `ops: u32` | compute batch |
//!
//! v1 files still replay, but the format is lossy: its writer collapsed
//! dependent stores into plain stores (there is no dependent-store tag),
//! so the `dependent` flag of stores does not survive a v1 roundtrip.
//! v2 preserves every event exactly, and its up-front counts let the
//! reader validate the whole file before replay begins: any malformed
//! input — bad magic, truncated record, unknown tag, inconsistent
//! counts — is an [`io::Error`] from [`TraceWorkload::open`], never a
//! panic and never a silently shortened replay.
//!
//! # Example
//!
//! ```no_run
//! use dpc_workloads::trace::{TraceWriter, TraceWorkload};
//! use dpc_workloads::{Scale, WorkloadFactory};
//!
//! # fn main() -> std::io::Result<()> {
//! let factory = WorkloadFactory::new(Scale::Tiny, 42);
//! let mut bfs = factory.build("bfs").expect("known workload");
//! TraceWriter::capture("bfs.dpctrc", bfs.as_mut(), 100_000)?;
//! let replay = TraceWorkload::open("bfs.dpctrc")?;
//! # let _ = replay;
//! # Ok(())
//! # }
//! ```

use dpc_types::stream::{EventStream, StreamCursor};
use dpc_types::{Event, Pc, VirtAddr, Workload};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC_V1: &[u8; 8] = b"DPCTRC1\n";
const MAGIC_V2: &[u8; 8] = b"DPCTRC2\n";

const V1_TAG_LOAD: u8 = 0;
const V1_TAG_STORE: u8 = 1;
const V1_TAG_LOAD_DEP: u8 = 2;
const V1_TAG_COMPUTE: u8 = 3;

/// Writes events into a binary trace file (current format, `DPCTRC2`).
///
/// Events are buffered in an [`EventStream`] and serialized on
/// [`TraceWriter::finish`] — the v2 format stores counts and
/// struct-of-arrays payloads, so it cannot be streamed record by record.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    stream: EventStream,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file creation.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::new(BufWriter::new(File::create(path)?))
    }

    /// Captures up to `max_events` events of `workload` into a trace file
    /// at `path`, returning the number written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn capture(
        path: impl AsRef<Path>,
        workload: &mut dyn Workload,
        max_events: u64,
    ) -> io::Result<u64> {
        let mut writer = Self::create(path)?;
        while writer.events() < max_events {
            match workload.next_event() {
                Some(event) => writer.write_event(&event)?,
                None => break,
            }
        }
        let written = writer.events();
        writer.finish()?;
        Ok(written)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps any writer (pass `&mut buf` or a `BufWriter`; see
    /// [`std::io::Write`]'s blanket impl for `&mut W`). Nothing is
    /// written until [`TraceWriter::finish`].
    ///
    /// # Errors
    ///
    /// Infallible today; kept `io::Result` for signature stability.
    pub fn new(sink: W) -> io::Result<Self> {
        Ok(TraceWriter { sink, stream: EventStream::new() })
    }

    /// Wraps a writer and pre-fills it with an already-captured stream.
    pub fn from_stream(sink: W, stream: EventStream) -> Self {
        TraceWriter { sink, stream }
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Infallible today (events buffer in memory); kept `io::Result` for
    /// signature stability.
    pub fn write_event(&mut self, event: &Event) -> io::Result<()> {
        self.stream.push(*event);
        Ok(())
    }

    /// Events buffered so far.
    pub fn events(&self) -> u64 {
        self.stream.len() as u64
    }

    /// Serializes the buffered stream (magic + v2 payload), flushes, and
    /// returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.write_all(MAGIC_V2)?;
        self.stream.write_to(&mut self.sink)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Replays a binary trace file (v1 or v2) as a [`Workload`].
///
/// The whole file is decoded and validated at open time into an
/// [`EventStream`]; replay is then a pure in-memory cursor walk.
#[derive(Clone, Debug)]
pub struct TraceWorkload {
    name: String,
    events: EventStream,
    cursor: StreamCursor,
}

impl TraceWorkload {
    /// Opens a trace file for replay.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be opened or is malformed in
    /// any way: bad magic, truncated record, unknown tag, or (v2)
    /// inconsistent counts.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let name = path
            .as_ref()
            .file_stem()
            .map_or_else(|| "trace".to_owned(), |s| s.to_string_lossy().into_owned());
        Self::with_name(BufReader::new(File::open(path)?), name)
    }

    /// Decodes a trace from any reader.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] for bad magic, unknown record tags,
    /// or inconsistent v2 counts; [`io::ErrorKind::UnexpectedEof`] for
    /// input truncated mid-record or mid-array.
    pub fn with_name<R: Read>(mut source: R, name: impl Into<String>) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        source.read_exact(&mut magic)?;
        let events = match &magic {
            m if m == MAGIC_V1 => decode_v1(&mut source)?,
            m if m == MAGIC_V2 => EventStream::read_from(&mut source)?,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a dpc trace file (bad magic)",
                ))
            }
        };
        Ok(TraceWorkload { name: name.into(), events, cursor: StreamCursor::default() })
    }

    /// Wraps an already-decoded stream.
    pub fn from_stream(name: impl Into<String>, events: EventStream) -> Self {
        TraceWorkload { name: name.into(), events, cursor: StreamCursor::default() }
    }

    /// The decoded stream.
    pub fn stream(&self) -> &EventStream {
        &self.events
    }

    /// Consumes the replay, returning the decoded stream.
    pub fn into_stream(self) -> EventStream {
        self.events
    }

    /// Resets the replay to the start of the trace.
    pub fn rewind(&mut self) {
        self.cursor = StreamCursor::default();
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_event(&mut self) -> Option<Event> {
        self.events.next_from(&mut self.cursor)
    }
}

/// Decodes the legacy v1 record stream strictly: end-of-file is only
/// legal at a record boundary.
fn decode_v1<R: Read>(source: &mut R) -> io::Result<EventStream> {
    let mut stream = EventStream::new();
    while let Some(tag) = read_tag(source)? {
        let event = match tag {
            V1_TAG_LOAD => Event::load(read_pc(source)?, read_vaddr(source)?),
            V1_TAG_STORE => Event::store(read_pc(source)?, read_vaddr(source)?),
            V1_TAG_LOAD_DEP => Event::load_dependent(read_pc(source)?, read_vaddr(source)?),
            V1_TAG_COMPUTE => Event::Compute { ops: read_u32(source)? },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("dpc trace v1: unknown record tag {other}"),
                ))
            }
        };
        stream.push(event);
    }
    Ok(stream)
}

/// Reads one record tag, distinguishing clean end-of-file (`None`) from
/// I/O failure.
fn read_tag<R: Read>(source: &mut R) -> io::Result<Option<u8>> {
    let mut buf = [0u8; 1];
    loop {
        match source.read(&mut buf) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(buf[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn read_u64<R: Read>(source: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    source.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32<R: Read>(source: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    source.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_pc<R: Read>(source: &mut R) -> io::Result<Pc> {
    Ok(Pc::new(read_u64(source)?))
}

fn read_vaddr<R: Read>(source: &mut R) -> io::Result<VirtAddr> {
    Ok(VirtAddr::new(read_u64(source)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scale, WorkloadFactory};
    use dpc_types::AccessKind;

    fn roundtrip(events: &[Event]) -> Vec<Event> {
        let mut buf = Vec::new();
        {
            let mut writer = TraceWriter::new(&mut buf).unwrap();
            for e in events {
                writer.write_event(e).unwrap();
            }
            writer.finish().unwrap();
        }
        let mut replay = TraceWorkload::with_name(buf.as_slice(), "test").unwrap();
        std::iter::from_fn(|| replay.next_event()).collect()
    }

    /// Builds a v1-format byte string by hand (the v1 writer is gone).
    fn v1_bytes(records: &[Event]) -> Vec<u8> {
        let mut buf = MAGIC_V1.to_vec();
        for event in records {
            match *event {
                Event::Mem { pc, vaddr, kind, dependent } => {
                    let tag = match (kind, dependent) {
                        (AccessKind::Write, _) => V1_TAG_STORE,
                        (AccessKind::Read, true) => V1_TAG_LOAD_DEP,
                        (AccessKind::Read, false) => V1_TAG_LOAD,
                    };
                    buf.push(tag);
                    buf.extend_from_slice(&pc.raw().to_le_bytes());
                    buf.extend_from_slice(&vaddr.raw().to_le_bytes());
                }
                Event::Compute { ops } => {
                    buf.push(V1_TAG_COMPUTE);
                    buf.extend_from_slice(&ops.to_le_bytes());
                }
            }
        }
        buf
    }

    #[test]
    fn all_event_kinds_roundtrip_including_dependent_stores() {
        let events = vec![
            Event::load(Pc::new(0x400), VirtAddr::new(0x1000)),
            Event::store(Pc::new(0x404), VirtAddr::new(0x2000)),
            Event::load_dependent(Pc::new(0x408), VirtAddr::new(0x3000)),
            Event::Mem {
                pc: Pc::new(0x40c),
                vaddr: VirtAddr::new(0x4000),
                kind: AccessKind::Write,
                dependent: true,
            },
            Event::Compute { ops: 7 },
        ];
        // v2 is lossless: the dependent store survives (it did not in v1).
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn real_workload_roundtrips_exactly() {
        let f1 = WorkloadFactory::new(Scale::Tiny, 42);
        let mut original = f1.build("canneal").unwrap();
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf).unwrap();
        let mut recorded = Vec::new();
        for _ in 0..5_000 {
            let event = original.next_event().unwrap();
            writer.write_event(&event).unwrap();
            recorded.push(event);
        }
        writer.finish().unwrap();
        let mut replay = TraceWorkload::with_name(buf.as_slice(), "canneal").unwrap();
        for (i, expected) in recorded.iter().enumerate() {
            assert_eq!(replay.next_event().as_ref(), Some(expected), "event {i}");
        }
        assert_eq!(replay.next_event(), None, "replay must end with the recording");
        replay.rewind();
        assert_eq!(replay.next_event().as_ref(), recorded.first(), "rewind restarts the replay");
    }

    #[test]
    fn v1_traces_still_replay() {
        let events = vec![
            Event::load(Pc::new(0x400), VirtAddr::new(0x1000)),
            Event::store(Pc::new(0x404), VirtAddr::new(0x2000)),
            Event::load_dependent(Pc::new(0x408), VirtAddr::new(0x3000)),
            Event::Compute { ops: 7 },
        ];
        let buf = v1_bytes(&events);
        let mut replay = TraceWorkload::with_name(buf.as_slice(), "legacy").unwrap();
        let replayed: Vec<Event> = std::iter::from_fn(|| replay.next_event()).collect();
        assert_eq!(replayed, events);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceWorkload::with_name(&b"NOTATRACEATALL"[..], "x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = TraceWorkload::with_name(&b"DPC"[..], "x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "short magic is truncation");
    }

    #[test]
    fn truncated_v1_record_is_an_error_at_open() {
        let buf = v1_bytes(&[Event::load(Pc::new(1), VirtAddr::new(2))]);
        for cut in [buf.len() - 5, buf.len() - 1, MAGIC_V1.len() + 1] {
            let err = TraceWorkload::with_name(&buf[..cut], "torn").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        // EOF exactly at a record boundary is a clean (empty or shorter) trace.
        let mut ok = TraceWorkload::with_name(&buf[..MAGIC_V1.len()], "empty").unwrap();
        assert_eq!(ok.next_event(), None);
    }

    #[test]
    fn unknown_v1_tag_is_an_error_at_open() {
        let mut buf = MAGIC_V1.to_vec();
        buf.push(99);
        let err = TraceWorkload::with_name(buf.as_slice(), "weird").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("99"), "{err}");
    }

    #[test]
    fn corrupted_v2_bytes_are_errors_at_open() {
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf).unwrap();
        writer.write_event(&Event::load(Pc::new(1), VirtAddr::new(2))).unwrap();
        writer.write_event(&Event::Compute { ops: 3 }).unwrap();
        writer.finish().unwrap();
        // Truncations anywhere in the payload are UnexpectedEof.
        for cut in [MAGIC_V2.len() + 3, buf.len() - 1] {
            let err = TraceWorkload::with_name(&buf[..cut], "torn").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        // A corrupted tag byte is InvalidData.
        let mut bad_tag = buf.clone();
        bad_tag[MAGIC_V2.len() + 24] = 77; // first tag, right after the three counts
        let err = TraceWorkload::with_name(bad_tag.as_slice(), "bad").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Inconsistent counts are InvalidData.
        let mut bad_counts = buf.clone();
        bad_counts[MAGIC_V2.len()] ^= 0xff; // scribble on the event count
        let err = TraceWorkload::with_name(bad_counts.as_slice(), "bad").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The untouched buffer still decodes.
        assert!(TraceWorkload::with_name(buf.as_slice(), "ok").is_ok());
    }

    #[test]
    fn capture_helper_writes_file() {
        let path = std::env::temp_dir().join("dpc_trace_test.dpctrc");
        let f = WorkloadFactory::new(Scale::Tiny, 7);
        let mut w = f.build("mcf").unwrap();
        let written = TraceWriter::capture(&path, w.as_mut(), 1_000).unwrap();
        assert_eq!(written, 1_000);
        let mut replay = TraceWorkload::open(&path).unwrap();
        assert_eq!(replay.name(), "dpc_trace_test");
        assert_eq!(replay.stream().len(), 1_000);
        let count = std::iter::from_fn(|| replay.next_event()).count();
        assert_eq!(count, 1_000);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn from_stream_constructors_share_the_encoding() {
        let mut stream = EventStream::new();
        stream.push(Event::load(Pc::new(1), VirtAddr::new(0x1000)));
        let mut sink = Vec::new();
        TraceWriter::from_stream(&mut sink, stream.clone()).finish().unwrap();
        let decoded = TraceWorkload::with_name(sink.as_slice(), "x").unwrap();
        assert_eq!(decoded.stream(), &stream);
        let direct = TraceWorkload::from_stream("x", stream.clone());
        assert_eq!(direct.into_stream(), stream);
    }
}
