//! Trace capture and replay.
//!
//! Any [`Workload`]'s event stream can be captured to a compact binary
//! trace file with [`TraceWriter`] and replayed later with
//! [`TraceWorkload`] — useful for distributing reproducible inputs,
//! diffing generator changes, or feeding externally collected traces
//! (e.g. converted Pin/DynamoRIO output) into the simulator.
//!
//! # Format
//!
//! Little-endian binary: an 8-byte magic (`b"DPCTRC1\n"`), then records:
//!
//! | tag (u8) | payload | meaning |
//! |---|---|---|
//! | 0 | `pc: u64, vaddr: u64` | independent load |
//! | 1 | `pc: u64, vaddr: u64` | store |
//! | 2 | `pc: u64, vaddr: u64` | dependent load |
//! | 3 | `ops: u32` | compute batch |
//!
//! # Example
//!
//! ```no_run
//! use dpc_workloads::trace::{TraceWriter, TraceWorkload};
//! use dpc_workloads::{Scale, WorkloadFactory};
//!
//! # fn main() -> std::io::Result<()> {
//! let factory = WorkloadFactory::new(Scale::Tiny, 42);
//! let mut bfs = factory.build("bfs").expect("known workload");
//! TraceWriter::capture("bfs.dpctrc", bfs.as_mut(), 100_000)?;
//! let replay = TraceWorkload::open("bfs.dpctrc")?;
//! # let _ = replay;
//! # Ok(())
//! # }
//! ```

use dpc_types::{AccessKind, Event, Pc, VirtAddr, Workload};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DPCTRC1\n";

const TAG_LOAD: u8 = 0;
const TAG_STORE: u8 = 1;
const TAG_LOAD_DEP: u8 = 2;
const TAG_COMPUTE: u8 = 3;

/// Streams events into a binary trace file.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    events: u64,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file creation or the header write.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::new(BufWriter::new(File::create(path)?))
    }

    /// Captures up to `max_events` events of `workload` into a trace file
    /// at `path`, returning the number written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn capture(
        path: impl AsRef<Path>,
        workload: &mut dyn Workload,
        max_events: u64,
    ) -> io::Result<u64> {
        let mut writer = Self::create(path)?;
        while writer.events() < max_events {
            match workload.next_event() {
                Some(event) => writer.write_event(&event)?,
                None => break,
            }
        }
        let written = writer.events();
        writer.finish()?;
        Ok(written)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps any writer (pass `&mut buf` or a `BufWriter`; see
    /// [`std::io::Write`]'s blanket impl for `&mut W`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the header write.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(MAGIC)?;
        Ok(TraceWriter { sink, events: 0 })
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_event(&mut self, event: &Event) -> io::Result<()> {
        match *event {
            Event::Mem { pc, vaddr, kind, dependent } => {
                let tag = match (kind, dependent) {
                    (AccessKind::Write, _) => TAG_STORE,
                    (AccessKind::Read, true) => TAG_LOAD_DEP,
                    (AccessKind::Read, false) => TAG_LOAD,
                };
                self.sink.write_all(&[tag])?;
                self.sink.write_all(&pc.raw().to_le_bytes())?;
                self.sink.write_all(&vaddr.raw().to_le_bytes())?;
            }
            Event::Compute { ops } => {
                self.sink.write_all(&[TAG_COMPUTE])?;
                self.sink.write_all(&ops.to_le_bytes())?;
            }
        }
        self.events += 1;
        Ok(())
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Replays a binary trace file as a [`Workload`].
#[derive(Debug)]
pub struct TraceWorkload<R: Read> {
    source: R,
    name: String,
    corrupt: bool,
}

impl TraceWorkload<BufReader<File>> {
    /// Opens a trace file for replay.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be opened or does not start
    /// with the trace magic.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let name = path
            .as_ref()
            .file_stem()
            .map_or_else(|| "trace".to_owned(), |s| s.to_string_lossy().into_owned());
        Self::with_name(BufReader::new(File::open(path)?), name)
    }
}

impl<R: Read> TraceWorkload<R> {
    /// Wraps any reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the stream does not start with the trace
    /// magic.
    pub fn with_name(mut source: R, name: impl Into<String>) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        source.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a dpc trace file"));
        }
        Ok(TraceWorkload { source, name: name.into(), corrupt: false })
    }

    fn read_u64(&mut self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.source.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn read_u32(&mut self) -> io::Result<u32> {
        let mut buf = [0u8; 4];
        self.source.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }
}

impl<R: Read> Workload for TraceWorkload<R> {
    fn name(&self) -> &str {
        &self.name
    }

    /// Yields the next recorded event; ends at end-of-file. A torn or
    /// corrupt record ends the replay (the stream cannot be resynced).
    fn next_event(&mut self) -> Option<Event> {
        if self.corrupt {
            return None;
        }
        let mut tag = [0u8; 1];
        if self.source.read_exact(&mut tag).is_err() {
            return None;
        }
        let event = (|| -> io::Result<Option<Event>> {
            Ok(match tag[0] {
                TAG_LOAD => {
                    Some(Event::load(Pc::new(self.read_u64()?), VirtAddr::new(self.read_u64()?)))
                }
                TAG_STORE => {
                    Some(Event::store(Pc::new(self.read_u64()?), VirtAddr::new(self.read_u64()?)))
                }
                TAG_LOAD_DEP => Some(Event::load_dependent(
                    Pc::new(self.read_u64()?),
                    VirtAddr::new(self.read_u64()?),
                )),
                TAG_COMPUTE => Some(Event::Compute { ops: self.read_u32()? }),
                _ => None,
            })
        })();
        match event {
            Ok(Some(event)) => Some(event),
            _ => {
                self.corrupt = true;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scale, WorkloadFactory};

    fn roundtrip(events: &[Event]) -> Vec<Event> {
        let mut buf = Vec::new();
        {
            let mut writer = TraceWriter::new(&mut buf).unwrap();
            for e in events {
                writer.write_event(e).unwrap();
            }
            writer.finish().unwrap();
        }
        let mut replay = TraceWorkload::with_name(buf.as_slice(), "test").unwrap();
        std::iter::from_fn(|| replay.next_event()).collect()
    }

    #[test]
    fn all_event_kinds_roundtrip() {
        let events = vec![
            Event::load(Pc::new(0x400), VirtAddr::new(0x1000)),
            Event::store(Pc::new(0x404), VirtAddr::new(0x2000)),
            Event::load_dependent(Pc::new(0x408), VirtAddr::new(0x3000)),
            Event::Compute { ops: 7 },
        ];
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn real_workload_roundtrips_exactly() {
        let f1 = WorkloadFactory::new(Scale::Tiny, 42);
        let mut original = f1.build("canneal").unwrap();
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf).unwrap();
        let mut recorded = Vec::new();
        for _ in 0..5_000 {
            let event = original.next_event().unwrap();
            writer.write_event(&event).unwrap();
            recorded.push(event);
        }
        writer.finish().unwrap();
        let mut replay = TraceWorkload::with_name(buf.as_slice(), "canneal").unwrap();
        for (i, expected) in recorded.iter().enumerate() {
            assert_eq!(replay.next_event().as_ref(), Some(expected), "event {i}");
        }
        assert_eq!(replay.next_event(), None, "replay must end with the recording");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceWorkload::with_name(&b"NOTATRACE"[..], "x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_record_ends_replay_cleanly() {
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf).unwrap();
        writer.write_event(&Event::load(Pc::new(1), VirtAddr::new(2))).unwrap();
        let buf = writer.finish().unwrap();
        // Chop the last record in half.
        let torn = &buf[..buf.len() - 5];
        let mut replay = TraceWorkload::with_name(torn, "torn").unwrap();
        assert_eq!(replay.next_event(), None);
        assert_eq!(replay.next_event(), None, "corrupt stream stays ended");
    }

    #[test]
    fn unknown_tag_ends_replay() {
        let mut buf = MAGIC.to_vec();
        buf.push(99);
        let mut replay = TraceWorkload::with_name(buf.as_slice(), "weird").unwrap();
        assert_eq!(replay.next_event(), None);
    }

    #[test]
    fn capture_helper_writes_file() {
        let path = std::env::temp_dir().join("dpc_trace_test.dpctrc");
        let f = WorkloadFactory::new(Scale::Tiny, 7);
        let mut w = f.build("mcf").unwrap();
        let written = TraceWriter::capture(&path, w.as_mut(), 1_000).unwrap();
        assert_eq!(written, 1_000);
        let mut replay = TraceWorkload::open(&path).unwrap();
        assert_eq!(replay.name(), "dpc_trace_test");
        let count = std::iter::from_fn(|| replay.next_event()).count();
        assert_eq!(count, 1_000);
        let _ = std::fs::remove_file(&path);
    }
}
