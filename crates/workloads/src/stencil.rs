//! Structured-grid workloads: `cactusADM` (SPEC 2006) and `lbm`
//! (SPEC 2017).
//!
//! Both are modeled as honest sweeps over 3-D grids:
//!
//! * **cactusADM** — a 7-point stencil applied to several *grid functions*
//!   (field arrays), as the Einstein-equation kernel touches dozens of
//!   evolved fields per cell. The ±z neighbors live ~`dim²·8` bytes away,
//!   so every cell touches pages far apart in several arrays at once —
//!   the TLB-thrashing behaviour the paper highlights for this workload.
//! * **lbm** — a D3Q19 lattice-Boltzmann streaming step in
//!   structure-of-arrays form: 19 source + 19 destination distribution
//!   arrays give 38 concurrent page streams. The L1 TLB filters the
//!   within-page reuse, so the L2 TLB sees almost pure dead-on-arrival
//!   fills — the paper reports 100% dpPred accuracy and coverage here.

use crate::emitter::{Algorithm, Emitter, Generator};
use crate::layout::{AddressSpace, VArray};
use crate::Scale;

const S_LOAD: u32 = 0;
const S_NBR: u32 = 1;
const S_STORE: u32 = 2;

/// D3Q19 streaming offsets (x, y, z) — the 19 lattice directions.
const D3Q19: [(i64, i64, i64); 19] = [
    (0, 0, 0),
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (-1, 1, 0),
    (1, -1, 0),
    (-1, -1, 0),
    (1, 0, 1),
    (-1, 0, 1),
    (1, 0, -1),
    (-1, 0, -1),
    (0, 1, 1),
    (0, -1, 1),
    (0, 1, -1),
    (0, -1, -1),
];

/// Number of cactusADM grid functions read per cell.
const CACTUS_FIELDS: usize = 10;
/// Fields whose spatial derivatives need face neighbors.
const CACTUS_DERIV_FIELDS: usize = 4;
/// Output fields written per cell.
const CACTUS_OUT_FIELDS: usize = 4;
/// Cells processed per algorithm step.
const CELL_CHUNK: u64 = 8;

fn clamp_index(idx: i64, cells: u64) -> u64 {
    idx.clamp(0, cells as i64 - 1) as u64
}

/// The cactusADM-like multi-field stencil.
///
/// cactusADM is *the* classic TLB-thrashing SPEC benchmark: the Fortran
/// BSSN kernel's loop order strides consecutive iterations by a whole
/// plane (`dim² × 8` bytes — dozens of pages), so nearly every access of
/// every grid function touches a fresh page. A page is revisited when the
/// next y-column passes through the same planes (a few columns share each
/// 4 KiB page), giving a cyclic page working set of `~14 × dim` pages —
/// just above even a 1536-entry LLT at the Small scale, the thrash regime
/// the paper reports (*"cactusADM ... thrashes smaller LLTs"*,
/// Fig. 11a). The multi-hundred-MB footprint also pushes the page-table
/// leaf level out of the LLC, making each walk genuinely expensive.
#[derive(Debug)]
pub struct CactusAdm {
    fields: Vec<VArray>,
    out: Vec<VArray>,
    dim: u64,
    /// Linear iteration index decomposed as (x, y, z) with z innermost.
    iter: u64,
}

/// Builds the `cactusADM` workload.
pub fn cactus_adm(scale: Scale) -> Generator<CactusAdm> {
    let dim = u64::from(scale.cactus_dim());
    let cells = dim * dim * dim;
    let mut space = AddressSpace::new();
    let fields = (0..CACTUS_FIELDS).map(|_| space.array(cells, 8)).collect();
    let out = (0..CACTUS_OUT_FIELDS).map(|_| space.array(cells, 8)).collect();
    Generator::new("cactusADM", CactusAdm { fields, out, dim, iter: 0 }, Emitter::new(10, 3))
}

impl Algorithm for CactusAdm {
    fn step(&mut self, em: &mut Emitter) {
        let dim = self.dim;
        let plane = dim * dim;
        let cells = plane * dim;
        let end = (self.iter + CELL_CHUNK).min(cells);
        for it in self.iter..end {
            // z innermost, then y, then x — while the arrays are laid out
            // x-fastest, so consecutive iterations stride by a full plane.
            let z = it % dim;
            let y = (it / dim) % dim;
            let x = it / plane;
            let c = (x + y * dim + z * plane) as i64;
            for (k, field) in self.fields.iter().enumerate() {
                em.load(S_LOAD, field.at(c as u64));
                if k < CACTUS_DERIV_FIELDS {
                    // x/y face neighbors for the differentiated fields
                    // (they stay near the cell's page).
                    for offset in [1i64, -1, dim as i64, -(dim as i64)] {
                        em.load(S_NBR, field.at(clamp_index(c + offset, cells)));
                    }
                }
            }
            for out in &self.out {
                em.store(S_STORE, out.at(c as u64));
            }
        }
        self.iter = if end >= cells { 0 } else { end };
    }
}

/// The D3Q19 lattice-Boltzmann streaming step.
///
/// SPEC's lbm stores the lattice as an **array of structures** — 20
/// doubles per cell — so the sweep's active page set is a handful of page
/// streams that the L1 TLB fully captures. The L2 TLB consequently sees
/// an almost pure stream of one-touch (dead-on-arrival) page fills, which
/// is why the paper reports 100% dpPred accuracy *and* coverage for lbm.
#[derive(Debug)]
pub struct Lbm {
    src: VArray,
    dst: VArray,
    dim: u64,
    cells: u64,
    cell: u64,
}

/// Bytes per lattice cell (19 distributions + a flags word).
const LBM_CELL_BYTES: u64 = 160;

/// Builds the `lbm` workload.
pub fn lbm(scale: Scale) -> Generator<Lbm> {
    let dim = u64::from(scale.grid_dim());
    let cells = dim * dim * dim;
    let mut space = AddressSpace::new();
    let src = space.array(cells, LBM_CELL_BYTES);
    let dst = space.array(cells, LBM_CELL_BYTES);
    Generator::new("lbm", Lbm { src, dst, dim, cells, cell: 0 }, Emitter::new(11, 2))
}

impl Algorithm for Lbm {
    fn step(&mut self, em: &mut Emitter) {
        let (dim, cells) = (self.dim, self.cells);
        let plane = dim * dim;
        let end = (self.cell + CELL_CHUNK).min(cells);
        for c in self.cell..end {
            let c = c as i64;
            for (d, &(dx, dy, dz)) in D3Q19.iter().enumerate() {
                let offset = dx + dy * dim as i64 + dz * plane as i64;
                let neighbor = clamp_index(c + offset, cells);
                // Distribution d of the neighbor cell (field offset d*8
                // within the 160-byte cell record).
                em.load(
                    S_LOAD,
                    dpc_types::VirtAddr::new(self.src.at(neighbor).raw() + d as u64 * 8),
                );
                em.store(
                    S_STORE,
                    dpc_types::VirtAddr::new(self.dst.at(c as u64).raw() + d as u64 * 8),
                );
            }
        }
        if end >= cells {
            // Time step complete: swap the lattices.
            std::mem::swap(&mut self.src, &mut self.dst);
            self.cell = 0;
        } else {
            self.cell = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::{Event, Workload};
    use std::collections::HashSet;

    #[test]
    fn cactus_touches_many_pages_per_cell_window() {
        let mut w = cactus_adm(Scale::Tiny);
        let mut pages = HashSet::new();
        let mut mems = 0;
        while mems < 2000 {
            if let Some(Event::Mem { vaddr, .. }) = w.next_event() {
                pages.insert(vaddr.vpn());
                mems += 1;
            }
        }
        assert!(
            pages.len() > CACTUS_FIELDS,
            "multi-field stencil must spread across many pages (got {})",
            pages.len()
        );
    }

    #[test]
    fn lbm_streams_through_both_lattices() {
        let mut w = lbm(Scale::Tiny);
        let mut pages = HashSet::new();
        let mut mems = 0;
        // 4096 cells × 160 B = 160 pages per lattice; a partial sweep must
        // keep entering fresh pages of both lattices (AoS streaming).
        while mems < 40_000 {
            if let Some(Event::Mem { vaddr, .. }) = w.next_event() {
                pages.insert(vaddr.vpn());
                mems += 1;
            }
        }
        assert!(pages.len() > 60, "AoS lattice sweep must stream pages (got {})", pages.len());
    }

    #[test]
    fn sweeps_wrap_around() {
        // A Tiny grid has 4096 cells; a full sweep of lbm is 4096 × 38
        // accesses. Run well past it and ensure the generator keeps going.
        let mut w = lbm(Scale::Tiny);
        for _ in 0..500_000 {
            assert!(w.next_event().is_some());
        }
    }

    #[test]
    fn clamp_keeps_indices_in_bounds() {
        assert_eq!(clamp_index(-5, 100), 0);
        assert_eq!(clamp_index(99, 100), 99);
        assert_eq!(clamp_index(100, 100), 99);
    }
}
