//! Synthetic graph inputs in compressed-sparse-row form.
//!
//! Two generators cover the paper's inputs: uniform random graphs (GAPBS /
//! Ligra defaults) and R-MAT/Kronecker graphs (Graph500). Adjacency lists
//! are sorted, making them usable for intersection-based algorithms
//! (triangle counting).

use crate::layout::{AddressSpace, VArray};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Virtual-address layout of a CSR graph: the 8-byte offsets array and the
/// 4-byte targets array, as GAPBS/Ligra lay them out.
#[derive(Clone, Copy, Debug)]
pub struct GraphLayout {
    /// `vertices + 1` offsets, 8 bytes each.
    pub offsets: VArray,
    /// `edges` target vertex ids, 4 bytes each.
    pub targets: VArray,
}

impl GraphLayout {
    /// Reserves address space for `graph`'s CSR arrays.
    pub fn new(space: &mut AddressSpace, graph: &CsrGraph) -> Self {
        GraphLayout {
            offsets: space.array(u64::from(graph.vertices()) + 1, 8),
            targets: space.array(graph.edges().max(1), 4),
        }
    }
}

/// A directed graph in CSR form (generated symmetric: every edge is added
/// in both directions, so in- and out-adjacency coincide).
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Uniform (Erdős–Rényi-style) random graph with `n` vertices and
    /// about `degree` edges per vertex.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform(n: u32, degree: u32, seed: u64) -> Self {
        assert!(n > 0, "graph must have vertices");
        let mut rng = SmallRng::seed_from_u64(seed);
        let edges = u64::from(n) * u64::from(degree) / 2;
        let pairs =
            (0..edges).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect::<Vec<_>>();
        Self::from_pairs(n, &pairs)
    }

    /// R-MAT (Kronecker) graph with the Graph500 parameters
    /// (a, b, c) = (0.57, 0.19, 0.19).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn rmat(n: u32, degree: u32, seed: u64) -> Self {
        assert!(n > 0 && n.is_power_of_two(), "R-MAT needs a power-of-two vertex count");
        let mut rng = SmallRng::seed_from_u64(seed);
        let bits = n.trailing_zeros();
        let edges = u64::from(n) * u64::from(degree) / 2;
        let mut pairs = Vec::with_capacity(edges as usize);
        for _ in 0..edges {
            let (mut u, mut v) = (0u32, 0u32);
            for _ in 0..bits {
                u <<= 1;
                v <<= 1;
                let r: f64 = rng.gen();
                if r < 0.57 {
                    // quadrant a: (0, 0)
                } else if r < 0.76 {
                    v |= 1; // b
                } else if r < 0.95 {
                    u |= 1; // c
                } else {
                    u |= 1;
                    v |= 1; // d
                }
            }
            pairs.push((u, v));
        }
        Self::from_pairs(n, &pairs)
    }

    /// Builds a symmetric CSR from an edge list.
    pub fn from_pairs(n: u32, pairs: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u64; n as usize];
        for &(u, v) in pairs {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0u32; acc as usize];
        let mut cursor = offsets[..n as usize].to_vec();
        for &(u, v) in pairs {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Sorted adjacency for intersection algorithms.
        for u in 0..n as usize {
            let (lo, hi) = (offsets[u] as usize, offsets[u + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        CsrGraph { offsets, targets }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges (twice the undirected edge count).
    pub fn edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Index range of vertex `u`'s adjacency in the target array.
    #[inline]
    pub fn neighbors_range(&self, u: u32) -> (u64, u64) {
        debug_assert!(u < self.vertices());
        let u = u as usize;
        (self.offsets[u], self.offsets[u + 1])
    }

    /// The `i`-th entry of the flat target array.
    #[inline]
    pub fn target(&self, i: u64) -> u32 {
        debug_assert!(i < self.edges());
        self.targets[i as usize]
    }

    /// Degree of vertex `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> u64 {
        let (lo, hi) = self.neighbors_range(u);
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_graph_shape() {
        let g = CsrGraph::uniform(1000, 8, 42);
        assert_eq!(g.vertices(), 1000);
        // n * degree / 2 undirected edges, symmetrized.
        assert_eq!(g.edges(), 8000);
        let total: u64 = (0..1000).map(|u| g.degree(u)).sum();
        assert_eq!(total, g.edges());
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = CsrGraph::uniform(500, 10, 7);
        for u in 0..500 {
            let (lo, hi) = g.neighbors_range(u);
            for i in lo..hi.saturating_sub(1) {
                assert!(g.target(i) <= g.target(i + 1));
            }
        }
    }

    #[test]
    fn symmetric_edges() {
        let g = CsrGraph::from_pairs(4, &[(0, 1), (1, 2)]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.degree(3), 0);
        let (lo, _) = g.neighbors_range(0);
        assert_eq!(g.target(lo), 1);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = CsrGraph::rmat(1 << 12, 16, 3);
        assert_eq!(g.vertices(), 1 << 12);
        let max_deg = (0..g.vertices()).map(|u| g.degree(u)).max().unwrap();
        let avg = g.edges() / u64::from(g.vertices());
        assert!(
            max_deg > avg * 8,
            "R-MAT must produce heavy-tailed degrees (max {max_deg}, avg {avg})"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CsrGraph::uniform(256, 8, 9);
        let b = CsrGraph::uniform(256, 8, 9);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.targets, b.targets);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rmat_rejects_non_power_of_two() {
        CsrGraph::rmat(1000, 8, 1);
    }
}
