//! Virtual-address-space layout for synthetic workloads.
//!
//! Workloads do not allocate their data for real — they model data
//! structures as regions of a 48-bit virtual address space and emit the
//! addresses the algorithm would touch. [`AddressSpace`] is a bump
//! allocator of page-aligned regions; [`VArray`] views a region as an
//! array of fixed-size elements.

use dpc_types::{VirtAddr, PAGE_SIZE};

/// Base of the modeled heap (clear of the modeled code segment at
/// 0x40_0000).
const HEAP_BASE: u64 = 0x1000_0000;
/// Guard gap between regions, so adjacent arrays never share a page.
const GUARD: u64 = PAGE_SIZE;

/// A bump allocator of page-aligned virtual regions.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace { next: HEAP_BASE }
    }

    /// Reserves a page-aligned region of `len` elements of `elem_size`
    /// bytes and returns it as a [`VArray`].
    ///
    /// # Panics
    ///
    /// Panics if `elem_size` is zero or the 47-bit heap would overflow.
    pub fn array(&mut self, len: u64, elem_size: u64) -> VArray {
        assert!(elem_size > 0, "element size must be nonzero");
        let bytes = len * elem_size;
        let base = self.next;
        let aligned = bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        self.next = base + aligned + GUARD;
        assert!(self.next < (1 << 47), "modeled virtual address space exhausted");
        VArray { base, elem_size, len }
    }

    /// Total bytes reserved so far (the modeled footprint).
    pub fn footprint(&self) -> u64 {
        self.next - HEAP_BASE
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// A modeled array: `len` elements of `elem_size` bytes at a fixed virtual
/// base.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VArray {
    base: u64,
    elem_size: u64,
    len: u64,
}

impl VArray {
    /// Virtual address of element `index`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `index` is out of bounds.
    #[inline]
    pub fn at(&self, index: u64) -> VirtAddr {
        debug_assert!(index < self.len, "index {index} out of bounds (len {})", self.len);
        VirtAddr::new(self.base + index * self.elem_size)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element size in bytes.
    #[inline]
    pub fn elem_size(&self) -> u64 {
        self.elem_size
    }

    /// Base address.
    #[inline]
    pub fn base(&self) -> VirtAddr {
        VirtAddr::new(self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_page_aligned() {
        let mut space = AddressSpace::new();
        let a = space.array(100, 8);
        let b = space.array(100, 8);
        assert_eq!(a.base().raw() % PAGE_SIZE, 0);
        assert_eq!(b.base().raw() % PAGE_SIZE, 0);
        // End of a (plus guard) precedes b.
        assert!(a.at(99).raw() + 8 <= b.base().raw());
        // Different pages entirely.
        assert_ne!(a.at(99).vpn(), b.at(0).vpn());
    }

    #[test]
    fn element_addressing() {
        let mut space = AddressSpace::new();
        let a = space.array(10, 4);
        assert_eq!(a.at(3).raw(), a.base().raw() + 12);
        assert_eq!(a.len(), 10);
        assert!(!a.is_empty());
        assert_eq!(a.elem_size(), 4);
    }

    #[test]
    fn footprint_accumulates() {
        let mut space = AddressSpace::new();
        assert_eq!(space.footprint(), 0);
        space.array(1024, 8); // 2 pages
        assert!(space.footprint() >= 2 * PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_elem_size_rejected() {
        AddressSpace::new().array(1, 0);
    }
}
