//! Virtual-address-space layout for synthetic workloads.
//!
//! Workloads do not allocate their data for real — they model data
//! structures as regions of a 48-bit virtual address space and emit the
//! addresses the algorithm would touch. [`AddressSpace`] is a bump
//! allocator of page-aligned regions; [`VArray`] views a region as an
//! array of fixed-size elements.

use dpc_types::{PageSize, VirtAddr, PAGE_SIZE};

/// Base of the modeled heap (clear of the modeled code segment at
/// 0x40_0000).
const HEAP_BASE: u64 = 0x1000_0000;
/// Guard gap between regions, so adjacent arrays never share a page.
const GUARD: u64 = PAGE_SIZE;

/// A bump allocator of page-aligned virtual regions.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace { next: HEAP_BASE }
    }

    /// Reserves a page-aligned region of `len` elements of `elem_size`
    /// bytes and returns it as a [`VArray`].
    ///
    /// # Panics
    ///
    /// Panics if `elem_size` is zero or the 47-bit heap would overflow.
    pub fn array(&mut self, len: u64, elem_size: u64) -> VArray {
        assert!(elem_size > 0, "element size must be nonzero");
        let bytes = len * elem_size;
        let base = self.next;
        let aligned = bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        self.next = base + aligned + GUARD;
        assert!(self.next < (1 << 47), "modeled virtual address space exhausted");
        VArray { base, elem_size, len }
    }

    /// Reserves a region like [`AddressSpace::array`], but with the base
    /// aligned up to one page of `size` — so a hot structure starts on a
    /// huge-page boundary and a `Uniform`/`Promote2M` page policy maps
    /// (or promotes) it without sharing its first huge page with a
    /// neighbouring region.
    ///
    /// Existing workloads keep using [`AddressSpace::array`], whose bump
    /// sequence this method never perturbs unless called — the checked-in
    /// goldens pin that every current layout is `array`-only.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`AddressSpace::array`].
    pub fn huge_array(&mut self, len: u64, elem_size: u64, size: PageSize) -> VArray {
        let align = size.bytes();
        self.next = self.next.div_ceil(align) * align;
        self.array(len, elem_size)
    }

    /// Total bytes reserved so far (the modeled footprint).
    pub fn footprint(&self) -> u64 {
        self.next - HEAP_BASE
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// A modeled array: `len` elements of `elem_size` bytes at a fixed virtual
/// base.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VArray {
    base: u64,
    elem_size: u64,
    len: u64,
}

impl VArray {
    /// Virtual address of element `index`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `index` is out of bounds.
    #[inline]
    pub fn at(&self, index: u64) -> VirtAddr {
        debug_assert!(index < self.len, "index {index} out of bounds (len {})", self.len);
        VirtAddr::new(self.base + index * self.elem_size)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element size in bytes.
    #[inline]
    pub fn elem_size(&self) -> u64 {
        self.elem_size
    }

    /// Base address.
    #[inline]
    pub fn base(&self) -> VirtAddr {
        VirtAddr::new(self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_page_aligned() {
        let mut space = AddressSpace::new();
        let a = space.array(100, 8);
        let b = space.array(100, 8);
        assert_eq!(a.base().raw() % PAGE_SIZE, 0);
        assert_eq!(b.base().raw() % PAGE_SIZE, 0);
        // End of a (plus guard) precedes b.
        assert!(a.at(99).raw() + 8 <= b.base().raw());
        // Different pages entirely.
        assert_ne!(a.at(99).vpn(), b.at(0).vpn());
    }

    #[test]
    fn element_addressing() {
        let mut space = AddressSpace::new();
        let a = space.array(10, 4);
        assert_eq!(a.at(3).raw(), a.base().raw() + 12);
        assert_eq!(a.len(), 10);
        assert!(!a.is_empty());
        assert_eq!(a.elem_size(), 4);
    }

    #[test]
    fn footprint_accumulates() {
        let mut space = AddressSpace::new();
        assert_eq!(space.footprint(), 0);
        space.array(1024, 8); // 2 pages
        assert!(space.footprint() >= 2 * PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_elem_size_rejected() {
        AddressSpace::new().array(1, 0);
    }

    #[test]
    fn huge_arrays_start_on_huge_page_boundaries() {
        let mut space = AddressSpace::new();
        space.array(3, 8); // misalign the bump pointer
        let two_m = space.huge_array(100, 8, PageSize::Size2M);
        assert_eq!(two_m.base().raw() % PageSize::Size2M.bytes(), 0);
        let one_g = space.huge_array(100, 8, PageSize::Size1G);
        assert_eq!(one_g.base().raw() % PageSize::Size1G.bytes(), 0);
    }

    #[test]
    fn huge_array_of_4k_matches_plain_array() {
        // HEAP_BASE is page-aligned and array() keeps the bump pointer
        // page-aligned, so a 4 KB "huge" array degenerates to array().
        let mut plain = AddressSpace::new();
        let mut huge = AddressSpace::new();
        plain.array(3, 8);
        huge.array(3, 8);
        assert_eq!(plain.array(100, 8), huge.huge_array(100, 8, PageSize::Size4K));
    }
}
