//! `cg.B` — the NAS Parallel Benchmarks conjugate-gradient kernel.
//!
//! Each CG iteration is dominated by a sparse matrix-vector product over a
//! randomly structured matrix (indirect `x[col]` gathers — the TLB-hostile
//! part) followed by streaming vector updates (AXPYs and dot products).
//! The generator reproduces exactly that phase structure.

use crate::emitter::{Algorithm, Emitter, Generator};
use crate::layout::{AddressSpace, VArray};
use crate::{mix, Scale};

const S_ROWPTR: u32 = 0;
const S_COLIDX: u32 = 1;
const S_VAL: u32 = 2;
const S_GATHER: u32 = 3;
const S_STORE: u32 = 4;
const S_VEC_A: u32 = 5;
const S_VEC_B: u32 = 6;

/// Nonzeros per matrix row.
const NNZ_PER_ROW: u64 = 12;
/// Vector elements processed per step in the vector phases.
const VEC_CHUNK: u64 = 64;
/// Rows processed per step in the SpMV phase.
const ROW_CHUNK: u64 = 4;

#[derive(Debug, PartialEq, Eq)]
enum Phase {
    /// q = A·p (indirect gathers).
    Spmv { row: u64 },
    /// α = p·q (streaming loads).
    Dot { i: u64 },
    /// x += α·p; r -= α·q (streaming read-modify-write).
    Axpy { i: u64 },
}

/// The CG iteration generator.
#[derive(Debug)]
pub struct Cg {
    n: u64,
    seed: u64,
    row_ptr: VArray,
    col_idx: VArray,
    values: VArray,
    x: VArray,
    p: VArray,
    q: VArray,
    r: VArray,
    phase: Phase,
}

/// Builds the `cg.B` workload.
pub fn cg(scale: Scale, seed: u64) -> Generator<Cg> {
    // The gather vector (8 B/elem) must exceed the LLT reach for the
    // indirect x[col] stream to generate dead pages.
    let n = match scale {
        Scale::Tiny => 1 << 14,
        Scale::Small => 1 << 22,
        Scale::Paper => 1 << 23,
    };
    let mut space = AddressSpace::new();
    let row_ptr = space.array(n + 1, 8);
    let col_idx = space.array(n * NNZ_PER_ROW, 4);
    let values = space.array(n * NNZ_PER_ROW, 8);
    let x = space.array(n, 8);
    let p = space.array(n, 8);
    let q = space.array(n, 8);
    let r = space.array(n, 8);
    Generator::new(
        "cg.B",
        Cg { n, seed, row_ptr, col_idx, values, x, p, q, r, phase: Phase::Spmv { row: 0 } },
        Emitter::new(12, 2),
    )
}

impl Cg {
    /// Deterministic column index of nonzero `k` of `row`, following NPB
    /// CG's geometric placement: most nonzeros cluster near the diagonal
    /// (hot, reusable `x` pages around the current row) with a tail of
    /// far-away columns (cold, dead-on-arrival pages) — the bimodal page
    /// mix a dead-page predictor can exploit.
    fn col_of(&self, row: u64, k: u64) -> u64 {
        let h = mix(self.seed ^ (row * NNZ_PER_ROW + k));
        if !h.is_multiple_of(4) {
            // Local band: within ±8192 elements (±16 pages) of the row.
            let span = 16_384.min(self.n);
            let offset = (h >> 8) % span;
            (row + self.n + offset - span / 2) % self.n
        } else {
            // Far column, uniform over the vector.
            (h >> 8) % self.n
        }
    }
}

impl Algorithm for Cg {
    fn step(&mut self, em: &mut Emitter) {
        match self.phase {
            Phase::Spmv { row } => {
                let end = (row + ROW_CHUNK).min(self.n);
                for r in row..end {
                    em.load(S_ROWPTR, self.row_ptr.at(r));
                    em.load(S_ROWPTR, self.row_ptr.at(r + 1));
                    for k in 0..NNZ_PER_ROW {
                        let nz = r * NNZ_PER_ROW + k;
                        em.load(S_COLIDX, self.col_idx.at(nz));
                        em.load(S_VAL, self.values.at(nz));
                        em.load_dependent(S_GATHER, self.p.at(self.col_of(r, k)));
                    }
                    em.store(S_STORE, self.q.at(r));
                }
                self.phase =
                    if end >= self.n { Phase::Dot { i: 0 } } else { Phase::Spmv { row: end } };
            }
            Phase::Dot { i } => {
                let end = (i + VEC_CHUNK).min(self.n);
                for j in i..end {
                    em.load(S_VEC_A, self.p.at(j));
                    em.load(S_VEC_B, self.q.at(j));
                }
                self.phase =
                    if end >= self.n { Phase::Axpy { i: 0 } } else { Phase::Dot { i: end } };
            }
            Phase::Axpy { i } => {
                let end = (i + VEC_CHUNK).min(self.n);
                for j in i..end {
                    em.load(S_VEC_A, self.x.at(j));
                    em.store(S_STORE, self.x.at(j));
                    em.load(S_VEC_B, self.r.at(j));
                    em.store(S_STORE, self.r.at(j));
                }
                self.phase =
                    if end >= self.n { Phase::Spmv { row: 0 } } else { Phase::Axpy { i: end } };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::{Event, Workload};
    use std::collections::HashSet;

    #[test]
    fn gathers_are_spread_over_the_vector() {
        let mut w = cg(Scale::Tiny, 5);
        let mut pages = HashSet::new();
        let mut mems = 0;
        while mems < 20_000 {
            if let Some(Event::Mem { vaddr, .. }) = w.next_event() {
                pages.insert(vaddr.vpn());
                mems += 1;
            }
        }
        // Tiny: 16K-element p vector = 32 pages; the gather stream must
        // reach most of them quickly.
        assert!(pages.len() > 40, "indirect gathers must spread (got {} pages)", pages.len());
    }

    #[test]
    fn phases_cycle() {
        let mut w = cg(Scale::Tiny, 5);
        for _ in 0..2_000_000 {
            assert!(w.next_event().is_some());
        }
    }

    #[test]
    fn column_structure_is_deterministic() {
        let mut f1 = cg(Scale::Tiny, 5);
        let mut f2 = cg(Scale::Tiny, 5);
        for _ in 0..10_000 {
            assert_eq!(f1.next_event(), f2.next_event());
        }
    }
}
