//! Synthetic trace generators reproducing the paper's 14 workloads
//! (Table II).
//!
//! The paper drives Sniper with Pin-instrumented SPEC / GAP / Ligra /
//! PARSEC / NPB binaries. Those binaries cannot run here, so each workload
//! is reproduced as a **deterministic algorithmic access-trace generator**:
//! the actual algorithm executes over synthetic inputs (R-MAT or uniform
//! random graphs, 3-D grids, sparse matrices) laid out in a modeled 48-bit
//! virtual address space, and every load/store the algorithm performs is
//! emitted as a [`Event::Mem`](dpc_types::Event) tagged with a static
//! PC site, interleaved with `Compute` events mimicking instruction mix.
//! See DESIGN.md §3 for why this preserves the behaviour the paper's
//! predictors depend on.
//!
//! | name | models | pattern |
//! |------|--------|---------|
//! | `cactusADM` | SPEC 2006 cactusADM | 7-point stencil over many grid functions |
//! | `lbm` | SPEC 2017 lbm | D3Q19 lattice-Boltzmann streaming (38 page streams) |
//! | `cg.B` | NPB conjugate gradient | SpMV + vector ops on a random sparse matrix |
//! | `cc` | GAPBS connected components | label propagation over edges |
//! | `sssp` | GAPBS single-source shortest path | Bellman-Ford rounds |
//! | `pr` | GAPBS PageRank | pull-based rank accumulation |
//! | `bc` | GAPBS betweenness centrality | forward BFS + backward accumulation |
//! | `graph500` | Graph500 BFS | frontier BFS over an R-MAT graph |
//! | `bfs` | Ligra BFS | frontier BFS over a uniform graph |
//! | `Triangle` | Ligra triangle counting | sorted adjacency intersection |
//! | `KCore` | Ligra k-core decomposition | iterative degree peeling |
//! | `mis` | Ligra maximal independent set | Luby rounds |
//! | `canneal` | PARSEC canneal | random element swaps in a big netlist |
//! | `mcf` | SPEC 2006 mcf | pointer chasing over arc lists + pricing sweeps |
//!
//! All generators are **infinite** (outer iterations loop forever):
//! bound runs with [`System::run_until`](../dpc_memsim/struct.System.html).
//!
//! # Example
//!
//! ```
//! use dpc_workloads::{WorkloadFactory, Scale, WORKLOAD_NAMES};
//!
//! let factory = WorkloadFactory::new(Scale::Tiny, 42);
//! let mut bfs = factory.build("bfs").expect("bfs is a known workload");
//! assert_eq!(bfs.name(), "bfs");
//! assert!(WORKLOAD_NAMES.contains(&"bfs"));
//! # use dpc_types::Workload;
//! assert!(bfs.next_event().is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod canneal;
pub mod emitter;
pub mod gapbs;
pub mod graph;
pub mod layout;
pub mod ligra;
pub mod mcf;
pub mod spmv;
pub mod stencil;
pub mod store;
pub mod trace;

use dpc_types::Workload;
use graph::CsrGraph;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, OnceLock};

pub use emitter::{Algorithm, Emitter, Generator};
pub use layout::{AddressSpace, VArray};
pub use store::{CaptureReport, EventCursor, EventSource, TraceStore};

/// SplitMix64 finalizer: a cheap, high-quality deterministic hash used to
/// derive synthetic data (edge weights, neighbor ids) from indices.
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The paper's 14 workloads (Table II order).
pub const WORKLOAD_NAMES: [&str; 14] = [
    "cactusADM",
    "cc",
    "cg.B",
    "sssp",
    "lbm",
    "Triangle",
    "KCore",
    "canneal",
    "pr",
    "graph500",
    "bfs",
    "bc",
    "mis",
    "mcf",
];

/// Input-size presets.
///
/// The paper uses 300–900 MB footprints; these presets scale that down
/// while keeping footprint ≫ LLT reach (4 MB) and ≫ LLC (2 MB), the regime
/// that produces dead pages and dead blocks (see DESIGN.md §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// A few MB — for unit/integration tests only.
    Tiny,
    /// Tens of MB — the default for experiment regeneration.
    #[default]
    Small,
    /// 100–300 MB — closest to the paper's footprints (slow).
    Paper,
}

impl Scale {
    /// Graph vertex count at this scale. Property arrays (4 B/vertex) must
    /// exceed the LLT reach (4 MB = 1M pages-worth of 4 B entries) for the
    /// paper's dead-page regime to appear, so Small already uses 2^21
    /// vertices.
    pub fn graph_vertices(self) -> u32 {
        match self {
            Scale::Tiny => 1 << 13,
            Scale::Small => 1 << 22,
            Scale::Paper => 1 << 23,
        }
    }

    /// Average graph degree at this scale.
    pub fn graph_degree(self) -> u32 {
        match self {
            Scale::Tiny | Scale::Small => 8,
            Scale::Paper => 16,
        }
    }

    /// Cubic-grid edge length at this scale (lbm's D3Q19 lattice).
    pub fn grid_dim(self) -> u32 {
        match self {
            Scale::Tiny => 16,
            Scale::Small => 56,
            Scale::Paper => 128,
        }
    }

    /// cactusADM grid edge length. The kernel's cyclic page working set is
    /// `~14 × dim` pages (see `stencil::CactusAdm`); dim 144 puts it at
    /// ~2000 pages — above even a 1536-entry LLT, the thrash regime the
    /// paper reports for this workload, where dpPred's gains *grow* with
    /// LLT size (Fig. 11a: 1.37× → 1.45× → 1.59×). The 14-array footprint
    /// (~1.3 GB virtual) also pushes the leaf page-table level out of the
    /// LLC, making every walk genuinely expensive.
    pub fn cactus_dim(self) -> u32 {
        match self {
            Scale::Tiny => 16,
            Scale::Small => 144,
            Scale::Paper => 224,
        }
    }
}

/// An unknown workload name was requested.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownWorkload {
    name: String,
}

impl fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload {:?} (known: {})", self.name, WORKLOAD_NAMES.join(", "))
    }
}

impl Error for UnknownWorkload {}

/// Which shared input a workload consumes. Both graph inputs are R-MAT
/// (Kronecker) graphs — the GAPBS and Ligra evaluations use kron/rMat
/// inputs, whose skewed degree distribution produces the hot-hub /
/// cold-tail page mix the paper's predictors exploit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum InputKind {
    SharedGraph,
    Graph500Graph,
}

/// Lazily-built inputs shared by every clone of a factory. Each graph and
/// each captured event stream is built at most once per factory family,
/// even when clones race from several worker threads (`OnceLock`
/// serializes initialization), and the result is deterministic in
/// `(scale, seed)` regardless of which thread wins.
#[derive(Debug, Default)]
struct SharedInputs {
    shared_graph: OnceLock<Arc<CsrGraph>>,
    graph500_graph: OnceLock<Arc<CsrGraph>>,
    traces: TraceStore,
}

/// Whether `DPC_TRACE_STORE` enables the shared trace store (the
/// default). `off`, `0`, and `false` disable it; anything else enables.
fn trace_store_env_enabled() -> bool {
    match std::env::var("DPC_TRACE_STORE") {
        Ok(value) => {
            let value = value.to_ascii_lowercase();
            !matches!(value.as_str(), "off" | "0" | "false")
        }
        Err(_) => true,
    }
}

/// Builds workloads by name, caching the expensive shared inputs (graphs)
/// so a sweep over configurations does not regenerate them per run.
///
/// The factory is `Send + Sync` and cheap to clone: clones share the input
/// cache, so a parallel campaign can hand one clone to each worker thread
/// and still generate each graph only once. Workload construction itself
/// is deterministic in `(scale, seed)` alone — two factories (cloned or
/// not) with the same parameters produce bit-identical workloads.
#[derive(Clone, Debug)]
pub struct WorkloadFactory {
    scale: Scale,
    seed: u64,
    use_trace_store: bool,
    inputs: Arc<SharedInputs>,
}

impl WorkloadFactory {
    /// Creates a factory for the given scale and master seed. The same
    /// `(scale, seed)` always produces identical workloads.
    ///
    /// The shared [`TraceStore`] is enabled unless the `DPC_TRACE_STORE`
    /// environment variable is `off`/`0`/`false` (the escape hatch for
    /// memory-constrained hosts); see [`WorkloadFactory::source`].
    pub fn new(scale: Scale, seed: u64) -> Self {
        WorkloadFactory {
            scale,
            seed,
            use_trace_store: trace_store_env_enabled(),
            inputs: Arc::new(SharedInputs::default()),
        }
    }

    /// Overrides the `DPC_TRACE_STORE` default for this factory (clones
    /// inherit the setting; the underlying store stays shared either
    /// way).
    pub fn with_trace_store(mut self, enabled: bool) -> Self {
        self.use_trace_store = enabled;
        self
    }

    /// Whether [`WorkloadFactory::source`] replays from the shared store.
    pub fn trace_store_enabled(&self) -> bool {
        self.use_trace_store
    }

    /// The factory's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The factory's master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared trace store backing this factory family.
    pub fn trace_store(&self) -> &TraceStore {
        &self.inputs.traces
    }

    fn graph(&self, kind: InputKind) -> Arc<CsrGraph> {
        let cell = match kind {
            InputKind::SharedGraph => &self.inputs.shared_graph,
            InputKind::Graph500Graph => &self.inputs.graph500_graph,
        };
        Arc::clone(cell.get_or_init(|| {
            let n = self.scale.graph_vertices();
            let deg = self.scale.graph_degree();
            Arc::new(match kind {
                InputKind::SharedGraph => CsrGraph::rmat(n, deg, self.seed ^ 0x1111),
                InputKind::Graph500Graph => CsrGraph::rmat(n, deg, self.seed ^ 0x2222),
            })
        }))
    }

    /// Builds the named workload.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownWorkload`] if `name` is not one of
    /// [`WORKLOAD_NAMES`].
    pub fn build(&self, name: &str) -> Result<Box<dyn Workload>, UnknownWorkload> {
        let scale = self.scale;
        let seed = self.seed;
        let shared = || InputKind::SharedGraph;
        Ok(match name {
            "cactusADM" => Box::new(stencil::cactus_adm(scale)),
            "lbm" => Box::new(stencil::lbm(scale)),
            "cg.B" => Box::new(spmv::cg(scale, seed ^ 0x3333)),
            "cc" => Box::new(gapbs::cc(self.graph(shared()))),
            "sssp" => Box::new(gapbs::sssp(self.graph(shared()), seed ^ 0x4444)),
            "pr" => Box::new(gapbs::pr(self.graph(shared()))),
            "bc" => Box::new(gapbs::bc(self.graph(shared()), seed ^ 0x5555)),
            "graph500" => Box::new(ligra::bfs_named(
                self.graph(InputKind::Graph500Graph),
                "graph500",
                seed ^ 0x6666,
            )),
            "bfs" => Box::new(ligra::bfs_named(self.graph(shared()), "bfs", seed ^ 0x7777)),
            "Triangle" => Box::new(ligra::triangle(self.graph(shared()))),
            "KCore" => Box::new(ligra::kcore(self.graph(shared()))),
            "mis" => Box::new(ligra::mis(self.graph(shared()), seed ^ 0x8888)),
            "canneal" => Box::new(canneal::canneal(scale, seed ^ 0x9999)),
            "mcf" => Box::new(mcf::mcf(scale, seed ^ 0xAAAA)),
            other => return Err(UnknownWorkload { name: other.to_owned() }),
        })
    }

    /// Returns a zero-copy replay cursor over the named workload's
    /// stream, capturing it into the shared [`TraceStore`] on first
    /// request. The stream covers exactly `mem_ops` memory events (plus
    /// interleaved compute events), the prefix a `mem_ops`-bounded
    /// simulation consumes.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownWorkload`] if `name` is not one of
    /// [`WORKLOAD_NAMES`].
    pub fn stream(
        &self,
        name: &str,
        mem_ops: u64,
    ) -> Result<(EventCursor, CaptureReport), UnknownWorkload> {
        if !WORKLOAD_NAMES.contains(&name) {
            return Err(UnknownWorkload { name: name.to_owned() });
        }
        let (events, report) = self.inputs.traces.get_or_capture(name, mem_ops, || {
            self.build(name).expect("name was validated against WORKLOAD_NAMES")
        });
        Ok((EventCursor::new(name, events), report))
    }

    /// Builds the event source for one simulation run covering `mem_ops`
    /// memory events: a replay cursor from the shared store when the
    /// store is enabled (see [`WorkloadFactory::with_trace_store`]), a
    /// fresh live generator otherwise. Both yield bit-identical events.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownWorkload`] if `name` is not one of
    /// [`WORKLOAD_NAMES`].
    pub fn source(
        &self,
        name: &str,
        mem_ops: u64,
    ) -> Result<(EventSource, CaptureReport), UnknownWorkload> {
        if self.use_trace_store {
            let (cursor, report) = self.stream(name, mem_ops)?;
            Ok((EventSource::Replay(cursor), report))
        } else {
            Ok((EventSource::Live(self.build(name)?), CaptureReport::default()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::Event;

    #[test]
    fn all_fourteen_build_and_emit() {
        let factory = WorkloadFactory::new(Scale::Tiny, 1);
        for name in WORKLOAD_NAMES {
            let mut w = factory.build(name).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(w.name(), name);
            let mut mems = 0;
            for _ in 0..10_000 {
                match w.next_event() {
                    Some(Event::Mem { .. }) => mems += 1,
                    Some(Event::Compute { .. }) => {}
                    None => panic!("{name} must be an infinite generator"),
                }
            }
            assert!(mems > 1000, "{name} must be memory-intensive (got {mems} mem events)");
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for name in ["bfs", "canneal", "mcf", "sssp"] {
            let f1 = WorkloadFactory::new(Scale::Tiny, 7);
            let f2 = WorkloadFactory::new(Scale::Tiny, 7);
            let mut a = f1.build(name).unwrap();
            let mut b = f2.build(name).unwrap();
            for i in 0..50_000 {
                assert_eq!(a.next_event(), b.next_event(), "{name} diverged at event {i}");
            }
        }
    }

    #[test]
    fn seeds_change_streams() {
        let f1 = WorkloadFactory::new(Scale::Tiny, 7);
        let f2 = WorkloadFactory::new(Scale::Tiny, 8);
        let mut a = f1.build("canneal").unwrap();
        let mut b = f2.build("canneal").unwrap();
        let same = (0..10_000).all(|_| a.next_event() == b.next_event());
        assert!(!same, "different seeds must produce different traces");
    }

    #[test]
    fn unknown_name_errors() {
        let factory = WorkloadFactory::new(Scale::Tiny, 1);
        let Err(err) = factory.build("nope") else {
            panic!("unknown workload must error");
        };
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn graph_inputs_are_cached() {
        let factory = WorkloadFactory::new(Scale::Tiny, 1);
        factory.build("bfs").unwrap();
        let first = factory.inputs.shared_graph.get().expect("bfs builds the shared graph");
        let first = Arc::as_ptr(first);
        factory.build("pr").unwrap();
        assert_eq!(
            Arc::as_ptr(factory.inputs.shared_graph.get().unwrap()),
            first,
            "uniform graph must be built once"
        );
        assert!(factory.inputs.graph500_graph.get().is_none());
        factory.build("graph500").unwrap();
        assert!(factory.inputs.graph500_graph.get().is_some());
    }

    #[test]
    fn replay_is_bit_identical_to_live_generation_for_every_workload() {
        const MEM_OPS: u64 = 2_000;
        let factory = WorkloadFactory::new(Scale::Tiny, 42).with_trace_store(true);
        let live_factory = WorkloadFactory::new(Scale::Tiny, 42);
        for name in WORKLOAD_NAMES {
            let (mut replay, report) = factory.stream(name, MEM_OPS).unwrap();
            assert!(report.captured, "{name}: first request must capture");
            let mut live = live_factory.build(name).unwrap();
            let mut replayed_mems = 0u64;
            let mut index = 0u64;
            while let Some(event) = replay.next_event() {
                assert_eq!(Some(event), live.next_event(), "{name} diverged at event {index}");
                if event.is_mem() {
                    replayed_mems += 1;
                }
                index += 1;
            }
            assert_eq!(replayed_mems, MEM_OPS, "{name}: stream must cover the mem-op budget");
            // Second request for the same key replays the cached stream.
            let (_, report) = factory.stream(name, MEM_OPS).unwrap();
            assert!(!report.captured, "{name}: second request must hit the cache");
        }
        assert_eq!(factory.trace_store().entries(), WORKLOAD_NAMES.len());
    }

    #[test]
    fn source_respects_trace_store_toggle_and_env_default() {
        let on = WorkloadFactory::new(Scale::Tiny, 3).with_trace_store(true);
        let off = on.clone().with_trace_store(false);
        assert!(on.trace_store_enabled());
        assert!(!off.trace_store_enabled());
        let (mut replay, _) = on.source("mcf", 100).unwrap();
        let (mut live, report) = off.source("mcf", 100).unwrap();
        assert!(matches!(replay, EventSource::Replay(_)));
        assert!(matches!(live, EventSource::Live(_)));
        assert!(!report.captured, "live sources never charge capture time");
        for i in 0..150 {
            let replayed = replay.next_event();
            let generated = live.next_event();
            if i < 100 {
                assert_eq!(replayed, generated, "event {i}");
            } else {
                assert!(generated.is_some(), "live generator is unbounded");
            }
        }
        assert!(on.source("nope", 100).is_err());
        assert!(off.source("nope", 100).is_err());
    }

    #[test]
    fn clones_share_inputs_and_cross_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WorkloadFactory>();

        let factory = WorkloadFactory::new(Scale::Tiny, 1);
        let clone = factory.clone();
        let handle = std::thread::spawn(move || {
            clone.build("bfs").unwrap();
            clone
        });
        let clone = handle.join().unwrap();
        factory.build("pr").unwrap();
        assert_eq!(
            Arc::as_ptr(factory.inputs.shared_graph.get().unwrap()),
            Arc::as_ptr(clone.inputs.shared_graph.get().unwrap()),
            "clones must share one graph instance"
        );
    }
}
