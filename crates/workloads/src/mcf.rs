//! `mcf` — SPEC 2006's minimum-cost network-flow solver.
//!
//! The network-simplex kernel alternates two phases with very different
//! memory behaviour, both reproduced here:
//!
//! * **pricing sweeps**: a sequential scan over the arc array, dereferencing
//!   each arc's head/tail node (semi-random node reads);
//! * **tree traversal**: pointer chasing along basis-tree node chains —
//!   the dependent-load pattern that makes mcf famously cache- and
//!   TLB-hostile and (per the paper) hard for DOA predictors.

use crate::emitter::{Algorithm, Emitter, Generator};
use crate::layout::{AddressSpace, VArray};
use crate::{mix, Scale};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const S_ARC: u32 = 0;
const S_HEAD: u32 = 1;
const S_TAIL: u32 = 2;
const S_CHASE: u32 = 3;
const S_UPDATE: u32 = 4;

/// Arcs scanned per pricing step.
const SCAN_CHUNK: u64 = 16;
/// Pointer-chase hops per traversal step.
const CHASE_HOPS: u64 = 32;
/// Arcs per node (mcf networks are sparse).
const ARCS_PER_NODE: u64 = 4;

#[derive(Debug, PartialEq, Eq)]
enum Phase {
    Pricing { arc: u64 },
    Traversal { remaining: u64 },
}

/// The network-simplex access generator.
#[derive(Debug)]
pub struct Mcf {
    nodes: VArray,
    arcs: VArray,
    n_nodes: u64,
    n_arcs: u64,
    seed: u64,
    cursor: u64,
    phase: Phase,
    rng: SmallRng,
}

/// Builds the `mcf` workload.
pub fn mcf(scale: Scale, seed: u64) -> Generator<Mcf> {
    let n_nodes = match scale {
        Scale::Tiny => 1 << 14,
        Scale::Small => 1 << 20,
        Scale::Paper => 1 << 21,
    };
    let n_arcs = n_nodes * ARCS_PER_NODE;
    let mut space = AddressSpace::new();
    let nodes = space.array(n_nodes, 64);
    let arcs = space.array(n_arcs, 32);
    let mut rng = SmallRng::seed_from_u64(seed);
    let cursor = rng.gen_range(0..n_nodes);
    Generator::new(
        "mcf",
        Mcf { nodes, arcs, n_nodes, n_arcs, seed, cursor, phase: Phase::Pricing { arc: 0 }, rng },
        Emitter::new(14, 1),
    )
}

impl Mcf {
    /// Deterministic successor in the basis tree: a pseudo-random
    /// permutation step over the node array.
    fn next_node(&self, node: u64) -> u64 {
        mix(self.seed ^ node ^ 0xF10) % self.n_nodes
    }

    /// Head node of an arc.
    fn head_of(&self, arc: u64) -> u64 {
        mix(self.seed ^ (arc << 1)) % self.n_nodes
    }

    /// Tail node of an arc.
    fn tail_of(&self, arc: u64) -> u64 {
        mix(self.seed ^ (arc << 1) ^ 1) % self.n_nodes
    }
}

impl Algorithm for Mcf {
    fn step(&mut self, em: &mut Emitter) {
        match self.phase {
            Phase::Pricing { arc } => {
                let end = (arc + SCAN_CHUNK).min(self.n_arcs);
                for a in arc..end {
                    em.load(S_ARC, self.arcs.at(a));
                    em.load(S_HEAD, self.nodes.at(self.head_of(a)));
                    em.load(S_TAIL, self.nodes.at(self.tail_of(a)));
                }
                self.phase = if end >= self.n_arcs {
                    Phase::Traversal { remaining: 64 }
                } else {
                    Phase::Pricing { arc: end }
                };
            }
            Phase::Traversal { remaining } => {
                let mut node = self.cursor;
                for _ in 0..CHASE_HOPS {
                    em.load_dependent(S_CHASE, self.nodes.at(node));
                    node = self.next_node(node);
                }
                // Basis update: write back flow along the visited path end.
                em.store(S_UPDATE, self.nodes.at(node));
                let entering = self.rng.gen_range(0..self.n_arcs);
                em.load(S_ARC, self.arcs.at(entering));
                em.store(S_UPDATE, self.arcs.at(entering));
                self.cursor = node;
                self.phase = if remaining <= 1 {
                    Phase::Pricing { arc: 0 }
                } else {
                    Phase::Traversal { remaining: remaining - 1 }
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::{Event, Workload};
    use std::collections::HashSet;

    #[test]
    fn phases_alternate_forever() {
        let mut w = mcf(Scale::Tiny, 3);
        for _ in 0..1_000_000 {
            assert!(w.next_event().is_some());
        }
    }

    #[test]
    fn chase_is_scattered() {
        let mut w = mcf(Scale::Tiny, 3);
        let mut pages = HashSet::new();
        let mut mems = 0;
        while mems < 50_000 {
            if let Some(Event::Mem { vaddr, .. }) = w.next_event() {
                pages.insert(vaddr.vpn());
                mems += 1;
            }
        }
        assert!(pages.len() > 200, "got {} pages", pages.len());
    }

    #[test]
    fn structure_is_deterministic() {
        let w1 = mcf(Scale::Tiny, 3);
        let mut w2 = mcf(Scale::Tiny, 3);
        let mut w1 = w1;
        for _ in 0..50_000 {
            assert_eq!(w1.next_event(), w2.next_event());
        }
    }
}
