//! Ligra-suite workloads: frontier BFS (`bfs`, and `graph500` on an R-MAT
//! input), triangle counting (`Triangle`), k-core decomposition (`KCore`)
//! and Luby maximal independent set (`mis`).

use crate::emitter::{Algorithm, Emitter, Generator};
use crate::graph::{CsrGraph, GraphLayout};
use crate::layout::{AddressSpace, VArray};
use crate::mix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const S_OFFS: u32 = 0;
const S_TGT: u32 = 1;
const S_PROP_U: u32 = 2;
const S_PROP_V: u32 = 3;
const S_STORE: u32 = 4;
const S_QUEUE: u32 = 5;
const S_INTERSECT: u32 = 6;

// ---------------------------------------------------------------------
// Frontier BFS (bfs, graph500).
// ---------------------------------------------------------------------

/// Frontier-based BFS. Visitation is round-stamped (`visited[v] == round`)
/// so restarting from a new source needs no reset pass.
#[derive(Debug)]
pub struct Bfs {
    graph: Arc<CsrGraph>,
    layout: GraphLayout,
    parent_array: VArray,
    queue_array: VArray,
    visited: Vec<u32>,
    round: u32,
    queue: Vec<u32>,
    qpos: usize,
    rng: SmallRng,
}

/// Builds a BFS workload under the given display name (`"bfs"` for the
/// Ligra variant, `"graph500"` for the R-MAT variant).
pub fn bfs_named(graph: Arc<CsrGraph>, name: &'static str, seed: u64) -> Generator<Bfs> {
    let mut space = AddressSpace::new();
    let layout = GraphLayout::new(&mut space, &graph);
    let n = u64::from(graph.vertices());
    let parent_array = space.array(n, 8);
    let queue_array = space.array(n, 4);
    let mut bfs = Bfs {
        visited: vec![0; graph.vertices() as usize],
        round: 0,
        queue: Vec::new(),
        qpos: 0,
        rng: SmallRng::seed_from_u64(seed),
        graph,
        layout,
        parent_array,
        queue_array,
    };
    bfs.restart();
    Generator::new(name, bfs, Emitter::new(5, 1))
}

impl Bfs {
    fn restart(&mut self) {
        self.round += 1;
        self.queue.clear();
        self.qpos = 0;
        let src = self.rng.gen_range(0..self.graph.vertices());
        debug_assert!(src < self.graph.vertices());
        self.visited[src as usize] = self.round;
        self.queue.push(src);
    }
}

impl Algorithm for Bfs {
    fn step(&mut self, em: &mut Emitter) {
        if self.qpos >= self.queue.len() {
            self.restart();
        }
        let u = self.queue[self.qpos];
        em.load(S_QUEUE, self.queue_array.at(self.qpos as u64));
        self.qpos += 1;
        em.load(S_OFFS, self.layout.offsets.at(u64::from(u)));
        em.load(S_OFFS, self.layout.offsets.at(u64::from(u) + 1));
        let (lo, hi) = self.graph.neighbors_range(u);
        for e in lo..hi {
            em.load(S_TGT, self.layout.targets.at(e));
            let v = self.graph.target(e);
            debug_assert!(v < self.graph.vertices());
            em.load_dependent(S_PROP_V, self.parent_array.at(u64::from(v)));
            if self.visited[v as usize] != self.round {
                self.visited[v as usize] = self.round;
                em.store(S_STORE, self.parent_array.at(u64::from(v)));
                em.store(S_QUEUE, self.queue_array.at(self.queue.len() as u64));
                self.queue.push(v);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Triangle counting (sorted-adjacency intersection).
// ---------------------------------------------------------------------

/// Triangle counting by merge-intersection of sorted adjacency lists.
///
/// Work is chunked at the `(u, neighbor)` pair level and each intersection
/// is further bounded per step, so a skewed (R-MAT) hub never buffers an
/// unbounded number of events at once.
#[derive(Debug)]
pub struct Triangle {
    graph: Arc<CsrGraph>,
    layout: GraphLayout,
    /// Iteration counter; the processed vertex is a stride permutation of
    /// it, interleaving hubs and tail vertices (R-MAT hubs cluster at low
    /// ids, and processing them in id order would pin the simulated
    /// window inside one enormous hub intersection).
    i: u32,
    u: u32,
    /// Next neighbor index of `u` to intersect against.
    e: u64,
    /// In-progress intersection cursors: (i, j, i_end, j_end).
    cursors: Option<(u64, u64, u64, u64)>,
}

/// Intersection comparisons emitted per step.
const INTERSECT_CHUNK: u64 = 512;
/// Elements intersected per merge side. Production triangle counters
/// relabel vertices by degree and intersect only the short higher-rank
/// suffix of each adjacency list, so hub×hub pairs never merge two full
/// mega-lists; this bound models that truncation.
const MERGE_BOUND: u64 = 64;

/// Odd stride for the vertex-order permutation (bijective modulo any
/// power-of-two vertex count).
const VERTEX_STRIDE: u64 = 0x9E37_79B1;

/// Builds the `Triangle` workload.
pub fn triangle(graph: Arc<CsrGraph>) -> Generator<Triangle> {
    let mut space = AddressSpace::new();
    let layout = GraphLayout::new(&mut space, &graph);
    let u = 0; // permutation of i = 0
    Generator::new(
        "Triangle",
        Triangle { graph, layout, i: 0, u, e: 0, cursors: None },
        Emitter::new(6, 1),
    )
}

impl Triangle {
    fn permute(&self, i: u32) -> u32 {
        ((u64::from(i) * VERTEX_STRIDE) % u64::from(self.graph.vertices())) as u32
    }
}

impl Algorithm for Triangle {
    fn step(&mut self, em: &mut Emitter) {
        let u = self.u;
        let (ulo, uhi) = self.graph.neighbors_range(u);
        if self.e == 0 && self.cursors.is_none() {
            em.load(S_OFFS, self.layout.offsets.at(u64::from(u)));
            em.load(S_OFFS, self.layout.offsets.at(u64::from(u) + 1));
            self.e = ulo;
        }
        // Resume or start an intersection.
        if let Some((mut i, mut j, i_end, j_end)) = self.cursors.take() {
            let mut budget = INTERSECT_CHUNK;
            while i < i_end && j < j_end && budget > 0 {
                em.load(S_INTERSECT, self.layout.targets.at(i));
                em.load(S_INTERSECT, self.layout.targets.at(j));
                let (a, b) = (self.graph.target(i), self.graph.target(j));
                if a == b {
                    i += 1;
                    j += 1;
                } else if a < b {
                    i += 1;
                } else {
                    j += 1;
                }
                budget -= 1;
            }
            if i < i_end && j < j_end {
                self.cursors = Some((i, j, i_end, j_end));
            }
            return;
        }
        // Advance to the next (u, v) pair.
        while self.e < uhi {
            let e = self.e;
            self.e += 1;
            em.load(S_TGT, self.layout.targets.at(e));
            let v = self.graph.target(e);
            if v <= u {
                continue;
            }
            em.load(S_OFFS, self.layout.offsets.at(u64::from(v)));
            em.load(S_OFFS, self.layout.offsets.at(u64::from(v) + 1));
            let (vlo, vhi) = self.graph.neighbors_range(v);
            self.cursors = Some((ulo, vlo, uhi.min(ulo + MERGE_BOUND), vhi.min(vlo + MERGE_BOUND)));
            return;
        }
        // Vertex exhausted: next in permuted order.
        self.i = if self.i + 1 >= self.graph.vertices() { 0 } else { self.i + 1 };
        self.u = self.permute(self.i);
        self.e = 0;
    }
}

// ---------------------------------------------------------------------
// K-core decomposition (peeling).
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq, Eq)]
enum KCorePhase {
    /// Scanning for vertices with degree ≤ k (chunked).
    Scan { v: u32 },
    /// Peeling queued vertices.
    Peel,
}

/// Iterative k-core peeling: remove vertices of degree ≤ k, increasing k
/// when the queue drains; restart when the graph is exhausted.
///
/// Candidate scans walk a compacted *work list* in the (nondeterministic
/// in real Ligra, here seeded-shuffled) order frontier compaction leaves
/// behind, so the per-vertex degree reads are gathers rather than a pure
/// sequential sweep.
#[derive(Debug)]
pub struct KCore {
    graph: Arc<CsrGraph>,
    layout: GraphLayout,
    deg_array: VArray,
    order_array: VArray,
    order: Vec<u32>,
    deg: Vec<i64>,
    removed: Vec<bool>,
    remaining: u32,
    k: i64,
    queue: Vec<u32>,
    qpos: usize,
    phase: KCorePhase,
}

const SCAN_CHUNK: u32 = 256;

/// Builds the `KCore` workload.
pub fn kcore(graph: Arc<CsrGraph>) -> Generator<KCore> {
    let mut space = AddressSpace::new();
    let layout = GraphLayout::new(&mut space, &graph);
    let n = graph.vertices();
    let deg_array = space.array(u64::from(n), 4);
    let order_array = space.array(u64::from(n), 4);
    let deg = (0..n).map(|u| graph.degree(u) as i64).collect();
    // Block-shuffled scan order: 256-element sequential runs at shuffled
    // positions — the shape a packed worklist takes after parallel
    // compaction. Runs are stream-like (predictably dead pages) while the
    // block order still breaks the pure sequential sweep.
    const BLOCK: u32 = 256;
    let blocks = n.div_ceil(BLOCK);
    let mut block_order: Vec<u32> = (0..blocks).collect();
    let mut rng = SmallRng::seed_from_u64(0xC0DE);
    for i in (1..blocks as usize).rev() {
        block_order.swap(i, rng.gen_range(0..=i));
    }
    let mut order = Vec::with_capacity(n as usize);
    for &b in &block_order {
        for x in (b * BLOCK)..((b + 1) * BLOCK).min(n) {
            order.push(x);
        }
    }
    Generator::new(
        "KCore",
        KCore {
            layout,
            deg_array,
            order_array,
            order,
            deg,
            removed: vec![false; n as usize],
            remaining: n,
            k: 0,
            queue: Vec::new(),
            qpos: 0,
            phase: KCorePhase::Scan { v: 0 },
            graph,
        },
        Emitter::new(7, 1),
    )
}

impl KCore {
    fn reset(&mut self) {
        for (u, d) in self.deg.iter_mut().enumerate() {
            *d = self.graph.degree(u as u32) as i64;
        }
        self.removed.fill(false);
        self.remaining = self.graph.vertices();
        self.k = 0;
        self.queue.clear();
        self.qpos = 0;
        self.phase = KCorePhase::Scan { v: 0 };
    }
}

impl Algorithm for KCore {
    fn step(&mut self, em: &mut Emitter) {
        match self.phase {
            KCorePhase::Scan { v } => {
                let n = self.graph.vertices();
                let end = (v + SCAN_CHUNK).min(n);
                for x in v..end {
                    em.load(S_QUEUE, self.order_array.at(u64::from(x)));
                    let candidate = self.order[x as usize];
                    debug_assert!(candidate < n);
                    em.load(S_PROP_U, self.deg_array.at(u64::from(candidate)));
                    if !self.removed[candidate as usize] && self.deg[candidate as usize] <= self.k {
                        self.queue.push(candidate);
                    }
                }
                self.phase = if end >= n { KCorePhase::Peel } else { KCorePhase::Scan { v: end } };
            }
            KCorePhase::Peel => {
                if self.qpos >= self.queue.len() {
                    self.queue.clear();
                    self.qpos = 0;
                    if self.remaining == 0 {
                        self.reset();
                    } else {
                        self.k += 1;
                        self.phase = KCorePhase::Scan { v: 0 };
                    }
                    return;
                }
                let u = self.queue[self.qpos];
                debug_assert!(u < self.graph.vertices());
                self.qpos += 1;
                if self.removed[u as usize] {
                    return;
                }
                self.removed[u as usize] = true;
                self.remaining -= 1;
                em.load(S_OFFS, self.layout.offsets.at(u64::from(u)));
                em.load(S_OFFS, self.layout.offsets.at(u64::from(u) + 1));
                let (lo, hi) = self.graph.neighbors_range(u);
                for e in lo..hi {
                    em.load(S_TGT, self.layout.targets.at(e));
                    let v = self.graph.target(e);
                    debug_assert!(v < self.graph.vertices());
                    em.load_dependent(S_PROP_V, self.deg_array.at(u64::from(v)));
                    if !self.removed[v as usize] {
                        self.deg[v as usize] -= 1;
                        em.store(S_STORE, self.deg_array.at(u64::from(v)));
                        if self.deg[v as usize] == self.k {
                            self.queue.push(v);
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Maximal independent set (Luby rounds).
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MisState {
    Undecided,
    InSet,
    Removed,
}

/// Luby's randomized MIS: a vertex joins when its priority beats all
/// undecided neighbors; neighbors of joiners are removed.
#[derive(Debug)]
pub struct Mis {
    graph: Arc<CsrGraph>,
    layout: GraphLayout,
    state_array: VArray,
    prio_array: VArray,
    state: Vec<MisState>,
    undecided: u32,
    u: u32,
    round: u64,
    seed: u64,
}

/// Builds the `mis` workload.
pub fn mis(graph: Arc<CsrGraph>, seed: u64) -> Generator<Mis> {
    let mut space = AddressSpace::new();
    let layout = GraphLayout::new(&mut space, &graph);
    let n = graph.vertices();
    let state_array = space.array(u64::from(n), 4);
    let prio_array = space.array(u64::from(n), 8);
    Generator::new(
        "mis",
        Mis {
            state: vec![MisState::Undecided; n as usize],
            undecided: n,
            u: 0,
            round: 0,
            seed,
            graph,
            layout,
            state_array,
            prio_array,
        },
        Emitter::new(8, 1),
    )
}

impl Mis {
    fn prio(&self, v: u32) -> u64 {
        mix(self.seed ^ (self.round << 32) ^ u64::from(v))
    }
}

impl Algorithm for Mis {
    fn step(&mut self, em: &mut Emitter) {
        let u = self.u;
        debug_assert!(u < self.graph.vertices());
        em.load(S_PROP_U, self.state_array.at(u64::from(u)));
        if self.state[u as usize] == MisState::Undecided {
            em.load(S_PROP_U, self.prio_array.at(u64::from(u)));
            em.load(S_OFFS, self.layout.offsets.at(u64::from(u)));
            em.load(S_OFFS, self.layout.offsets.at(u64::from(u) + 1));
            let my_prio = self.prio(u);
            let mut wins = true;
            let (lo, hi) = self.graph.neighbors_range(u);
            for e in lo..hi {
                em.load(S_TGT, self.layout.targets.at(e));
                let v = self.graph.target(e);
                debug_assert!(v < self.graph.vertices());
                em.load_dependent(S_PROP_V, self.state_array.at(u64::from(v)));
                if self.state[v as usize] == MisState::Undecided {
                    em.load_dependent(S_PROP_V, self.prio_array.at(u64::from(v)));
                    if self.prio(v) > my_prio {
                        wins = false;
                        break;
                    }
                }
            }
            if wins {
                self.state[u as usize] = MisState::InSet;
                self.undecided -= 1;
                em.store(S_STORE, self.state_array.at(u64::from(u)));
                for e in lo..hi {
                    let v = self.graph.target(e);
                    if self.state[v as usize] == MisState::Undecided {
                        self.state[v as usize] = MisState::Removed;
                        self.undecided -= 1;
                        em.store(S_STORE, self.state_array.at(u64::from(v)));
                    }
                }
            }
        }
        self.u = if u + 1 >= self.graph.vertices() { 0 } else { u + 1 };
        if self.u == 0 {
            self.round += 1;
            if self.undecided == 0 {
                self.state.fill(MisState::Undecided);
                self.undecided = self.graph.vertices();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::Workload;

    fn graph() -> Arc<CsrGraph> {
        Arc::new(CsrGraph::uniform(2048, 8, 5))
    }

    #[test]
    fn bfs_visits_and_restarts() {
        let mut w = bfs_named(graph(), "bfs", 3);
        for _ in 0..300_000 {
            assert!(w.next_event().is_some());
        }
    }

    #[test]
    fn graph500_uses_rmat_name() {
        let g = Arc::new(CsrGraph::rmat(1 << 11, 8, 5));
        let w = bfs_named(g, "graph500", 3);
        assert_eq!(dpc_types::Workload::name(&w), "graph500");
    }

    #[test]
    fn triangle_intersections_emit_heavily() {
        let mut w = triangle(graph());
        let mut mems = 0;
        for _ in 0..100_000 {
            if w.next_event().unwrap().is_mem() {
                mems += 1;
            }
        }
        assert!(mems > 40_000);
    }

    #[test]
    fn kcore_peels_to_exhaustion_and_restarts() {
        let mut w = kcore(graph());
        for _ in 0..1_000_000 {
            assert!(w.next_event().is_some());
        }
    }

    #[test]
    fn mis_decides_all_vertices() {
        let mut w = mis(graph(), 17);
        for _ in 0..500_000 {
            assert!(w.next_event().is_some());
        }
    }
}
