//! Event emission plumbing shared by all workload generators.
//!
//! An [`Algorithm`] runs in resumable steps, pushing the loads/stores it
//! performs into an [`Emitter`]; the [`Generator`] wrapper adapts it to
//! the [`Workload`] trait by draining the buffer and stepping on demand.
//!
//! Every memory event carries a PC identifying its static *access site*
//! (`pc = code_base + 4 × site`), giving the PC-indexed predictors the
//! same signal a real instruction stream would. `Compute` events are
//! interleaved to model the non-memory instruction mix.

use dpc_types::workload::Event;
use dpc_types::{Pc, VirtAddr, Workload};
use std::collections::VecDeque;

/// Modeled code-segment base for PC sites.
const CODE_BASE: u64 = 0x40_0000;

/// Buffer into which algorithms emit their accesses.
#[derive(Debug)]
pub struct Emitter {
    buf: VecDeque<Event>,
    pc_base: u64,
    compute_per_mem: u32,
}

impl Emitter {
    /// Creates an emitter. `workload_id` separates PC sites of different
    /// workloads; `compute_per_mem` non-memory instructions accompany each
    /// access (the workload's arithmetic intensity).
    pub fn new(workload_id: u64, compute_per_mem: u32) -> Self {
        Emitter {
            buf: VecDeque::with_capacity(1024),
            pc_base: CODE_BASE + (workload_id << 12),
            compute_per_mem,
        }
    }

    /// PC of static access site `site`.
    #[inline]
    pub fn pc(&self, site: u32) -> Pc {
        Pc::new(self.pc_base + u64::from(site) * 4)
    }

    /// Emits a load from `va` at access site `site`.
    #[inline]
    pub fn load(&mut self, site: u32, va: VirtAddr) {
        if self.compute_per_mem > 0 {
            self.buf.push_back(Event::Compute { ops: self.compute_per_mem });
        }
        self.buf.push_back(Event::load(self.pc(site), va));
    }

    /// Emits a load whose address was produced by the previous memory
    /// access (pointer chase, index-then-gather). The timing model
    /// serializes it behind its producer.
    #[inline]
    pub fn load_dependent(&mut self, site: u32, va: VirtAddr) {
        if self.compute_per_mem > 0 {
            self.buf.push_back(Event::Compute { ops: self.compute_per_mem });
        }
        self.buf.push_back(Event::load_dependent(self.pc(site), va));
    }

    /// Emits a store to `va` at access site `site`.
    #[inline]
    pub fn store(&mut self, site: u32, va: VirtAddr) {
        if self.compute_per_mem > 0 {
            self.buf.push_back(Event::Compute { ops: self.compute_per_mem });
        }
        self.buf.push_back(Event::store(self.pc(site), va));
    }

    /// Emits `ops` extra non-memory instructions.
    #[inline]
    pub fn compute(&mut self, ops: u32) {
        if ops > 0 {
            self.buf.push_back(Event::Compute { ops });
        }
    }

    /// Buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is drained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn pop(&mut self) -> Option<Event> {
        self.buf.pop_front()
    }
}

/// A resumable workload algorithm.
///
/// `step` performs a bounded chunk of work (one vertex, one grid row, ...)
/// and emits its accesses. Generators are infinite: when an outer
/// iteration finishes, `step` starts the next one.
pub trait Algorithm {
    /// Performs one chunk of work, emitting at least one event.
    fn step(&mut self, emitter: &mut Emitter);
}

/// Adapts an [`Algorithm`] + [`Emitter`] pair to the [`Workload`] trait.
#[derive(Debug)]
pub struct Generator<A> {
    name: &'static str,
    algorithm: A,
    emitter: Emitter,
}

impl<A: Algorithm> Generator<A> {
    /// Wraps `algorithm` under the given workload name.
    pub fn new(name: &'static str, algorithm: A, emitter: Emitter) -> Self {
        Generator { name, algorithm, emitter }
    }
}

impl<A: Algorithm> Workload for Generator<A> {
    fn name(&self) -> &str {
        self.name
    }

    fn next_event(&mut self) -> Option<Event> {
        let mut guard = 0;
        while self.emitter.is_empty() {
            self.algorithm.step(&mut self.emitter);
            guard += 1;
            assert!(guard < 1_000_000, "algorithm produced no events for 1M steps");
        }
        self.emitter.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::AccessKind;

    struct Alternate(u64);
    impl Algorithm for Alternate {
        fn step(&mut self, emitter: &mut Emitter) {
            let va = VirtAddr::new(0x1000_0000 + self.0 * 8);
            emitter.load(0, va);
            emitter.store(1, va);
            self.0 += 1;
        }
    }

    #[test]
    fn generator_interleaves_compute() {
        let mut g = Generator::new("alt", Alternate(0), Emitter::new(1, 2));
        let events: Vec<_> = (0..4).map(|_| g.next_event().unwrap()).collect();
        assert!(matches!(events[0], Event::Compute { ops: 2 }));
        assert!(matches!(events[1], Event::Mem { kind: AccessKind::Read, .. }));
        assert!(matches!(events[2], Event::Compute { ops: 2 }));
        assert!(matches!(events[3], Event::Mem { kind: AccessKind::Write, .. }));
        assert_eq!(g.name(), "alt");
    }

    #[test]
    fn zero_compute_ratio_emits_only_mem() {
        let mut g = Generator::new("alt", Alternate(0), Emitter::new(1, 0));
        for _ in 0..10 {
            assert!(g.next_event().unwrap().is_mem());
        }
    }

    #[test]
    fn pc_sites_are_stable_and_distinct() {
        let e1 = Emitter::new(1, 0);
        let e2 = Emitter::new(2, 0);
        assert_eq!(e1.pc(0), e1.pc(0));
        assert_ne!(e1.pc(0), e1.pc(1));
        assert_ne!(e1.pc(0), e2.pc(0), "workloads have disjoint code pages");
    }
}
