//! GAP benchmark suite workloads: connected components (`cc`),
//! single-source shortest path (`sssp`), PageRank (`pr`) and betweenness
//! centrality (`bc`).
//!
//! Each generator executes the real algorithm over the shared synthetic
//! graph and emits every CSR/property-array access the algorithm performs.

use crate::emitter::{Algorithm, Emitter, Generator};
use crate::graph::{CsrGraph, GraphLayout};
use crate::layout::{AddressSpace, VArray};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

// Access-site ids (per-workload PCs).
const S_OFFS: u32 = 0;
const S_TGT: u32 = 1;
const S_PROP_U: u32 = 2;
const S_PROP_V: u32 = 3;
const S_STORE: u32 = 4;
const S_AUX: u32 = 5;
const S_AUX2: u32 = 6;

fn wrap(v: u32, n: u32) -> u32 {
    if v + 1 >= n {
        0
    } else {
        v + 1
    }
}

/// Emits the offsets + adjacency loads for vertex `u`, calling `visit`
/// per neighbor index into the flat target array.
fn scan_neighbors(
    em: &mut Emitter,
    graph: &CsrGraph,
    layout: &GraphLayout,
    u: u32,
    mut visit: impl FnMut(&mut Emitter, u64, u32),
) {
    em.load(S_OFFS, layout.offsets.at(u64::from(u)));
    em.load(S_OFFS, layout.offsets.at(u64::from(u) + 1));
    let (lo, hi) = graph.neighbors_range(u);
    for e in lo..hi {
        em.load(S_TGT, layout.targets.at(e));
        visit(em, e, graph.target(e));
    }
}

// ---------------------------------------------------------------------
// PageRank (pull-based).
// ---------------------------------------------------------------------

/// Pull-based PageRank over the shared graph.
#[derive(Debug)]
pub struct PageRank {
    graph: Arc<CsrGraph>,
    layout: GraphLayout,
    rank: VArray,
    next: VArray,
    u: u32,
}

/// Builds the `pr` workload.
pub fn pr(graph: Arc<CsrGraph>) -> Generator<PageRank> {
    let mut space = AddressSpace::new();
    let layout = GraphLayout::new(&mut space, &graph);
    let n = u64::from(graph.vertices());
    let rank = space.array(n, 8);
    let next = space.array(n, 8);
    Generator::new("pr", PageRank { graph, layout, rank, next, u: 0 }, Emitter::new(9, 1))
}

impl Algorithm for PageRank {
    fn step(&mut self, em: &mut Emitter) {
        let u = self.u;
        let (rank, next) = (self.rank, self.next);
        scan_neighbors(em, &self.graph, &self.layout.clone(), u, |em, _e, v| {
            em.load_dependent(S_PROP_V, rank.at(u64::from(v)));
        });
        em.store(S_STORE, next.at(u64::from(u)));
        self.u = wrap(u, self.graph.vertices());
    }
}

// ---------------------------------------------------------------------
// Connected components (label propagation).
// ---------------------------------------------------------------------

/// Shiloach-Vishkin-style label propagation.
#[derive(Debug)]
pub struct ConnectedComponents {
    graph: Arc<CsrGraph>,
    layout: GraphLayout,
    comp_array: VArray,
    comp: Vec<u32>,
    u: u32,
    changed: bool,
}

/// Builds the `cc` workload.
pub fn cc(graph: Arc<CsrGraph>) -> Generator<ConnectedComponents> {
    let mut space = AddressSpace::new();
    let layout = GraphLayout::new(&mut space, &graph);
    let n = graph.vertices();
    let comp_array = space.array(u64::from(n), 4);
    let comp = (0..n).collect();
    Generator::new(
        "cc",
        ConnectedComponents { graph, layout, comp_array, comp, u: 0, changed: false },
        Emitter::new(2, 1),
    )
}

impl Algorithm for ConnectedComponents {
    fn step(&mut self, em: &mut Emitter) {
        let u = self.u;
        em.load(S_PROP_U, self.comp_array.at(u64::from(u)));
        let mut label = self.comp[u as usize];
        let comp_array = self.comp_array;
        let comp = &mut self.comp;
        let mut changed = false;
        scan_neighbors(em, &self.graph, &self.layout.clone(), u, |em, _e, v| {
            em.load_dependent(S_PROP_V, comp_array.at(u64::from(v)));
            if comp[v as usize] < label {
                label = comp[v as usize];
                changed = true;
            }
        });
        if changed {
            self.comp[u as usize] = label;
            em.store(S_STORE, self.comp_array.at(u64::from(u)));
            self.changed = true;
        }
        self.u = wrap(u, self.graph.vertices());
        if self.u == 0 {
            if !self.changed {
                // Converged: start a fresh run.
                for (i, c) in self.comp.iter_mut().enumerate() {
                    *c = i as u32;
                }
            }
            self.changed = false;
        }
    }
}

// ---------------------------------------------------------------------
// Single-source shortest path (Bellman-Ford rounds).
// ---------------------------------------------------------------------

const INF: u32 = u32::MAX;

/// Deterministic per-edge weight in 1..=63.
fn weight_of(e: u64) -> u32 {
    (crate::mix(e) % 63 + 1) as u32
}

/// Worklist-based Bellman-Ford SSSP (the frontier formulation GAPBS'
/// delta-stepping approximates); restarts from a new random source on
/// convergence.
#[derive(Debug)]
pub struct Sssp {
    graph: Arc<CsrGraph>,
    layout: GraphLayout,
    dist_array: VArray,
    weights: VArray,
    queue_array: VArray,
    dist: Vec<u32>,
    /// Round-stamped in-queue marker to avoid duplicate worklist entries.
    queued: Vec<u32>,
    round: u32,
    queue: Vec<u32>,
    qpos: usize,
    rng: SmallRng,
}

/// Builds the `sssp` workload.
pub fn sssp(graph: Arc<CsrGraph>, seed: u64) -> Generator<Sssp> {
    let mut space = AddressSpace::new();
    let layout = GraphLayout::new(&mut space, &graph);
    let n = graph.vertices();
    let dist_array = space.array(u64::from(n), 4);
    let weights = space.array(graph.edges().max(1), 4);
    let queue_array = space.array(u64::from(n), 4);
    let mut sssp = Sssp {
        dist: vec![INF; n as usize],
        queued: vec![0; n as usize],
        round: 0,
        queue: Vec::new(),
        qpos: 0,
        rng: SmallRng::seed_from_u64(seed),
        graph,
        layout,
        dist_array,
        weights,
        queue_array,
    };
    sssp.restart();
    Generator::new("sssp", sssp, Emitter::new(3, 1))
}

impl Sssp {
    fn restart(&mut self) {
        self.dist.fill(INF);
        self.round += 1;
        self.queue.clear();
        self.qpos = 0;
        let src = self.rng.gen_range(0..self.graph.vertices());
        debug_assert!(src < self.graph.vertices());
        self.dist[src as usize] = 0;
        self.queued[src as usize] = self.round;
        self.queue.push(src);
    }
}

impl Algorithm for Sssp {
    fn step(&mut self, em: &mut Emitter) {
        if self.qpos >= self.queue.len() {
            self.restart();
        }
        let u = self.queue[self.qpos];
        debug_assert!(u < self.graph.vertices());
        // The worklist can outgrow n (requeues); it lives in a circular
        // buffer of n slots.
        em.load(S_AUX2, self.queue_array.at(self.qpos as u64 % self.queue_array.len()));
        self.qpos += 1;
        self.queued[u as usize] = 0;
        em.load(S_PROP_U, self.dist_array.at(u64::from(u)));
        let du = self.dist[u as usize];
        let (dist_array, weights, queue_array) = (self.dist_array, self.weights, self.queue_array);
        let (dist, queued, queue, round) =
            (&mut self.dist, &mut self.queued, &mut self.queue, self.round);
        scan_neighbors(em, &self.graph, &self.layout.clone(), u, |em, e, v| {
            debug_assert!((v as usize) < dist.len());
            em.load(S_AUX, weights.at(e));
            em.load_dependent(S_PROP_V, dist_array.at(u64::from(v)));
            let cand = du.saturating_add(weight_of(e));
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                em.store(S_STORE, dist_array.at(u64::from(v)));
                if queued[v as usize] != round {
                    queued[v as usize] = round;
                    em.store(S_AUX2, queue_array.at((queue.len() % dist.len()) as u64));
                    queue.push(v);
                }
            }
        });
    }
}

// ---------------------------------------------------------------------
// Betweenness centrality (Brandes, unweighted).
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq, Eq)]
enum BcPhase {
    Forward,
    Backward,
}

/// Brandes betweenness centrality: forward BFS accumulating path counts,
/// backward dependency accumulation, then the next source.
#[derive(Debug)]
pub struct Betweenness {
    graph: Arc<CsrGraph>,
    layout: GraphLayout,
    dist_array: VArray,
    sigma_array: VArray,
    delta_array: VArray,
    centrality: VArray,
    queue_array: VArray,
    dist: Vec<i32>,
    sigma: Vec<u64>,
    queue: Vec<u32>,
    qpos: usize,
    phase: BcPhase,
    round: u32,
    rng: SmallRng,
}

/// Builds the `bc` workload.
pub fn bc(graph: Arc<CsrGraph>, seed: u64) -> Generator<Betweenness> {
    let mut space = AddressSpace::new();
    let layout = GraphLayout::new(&mut space, &graph);
    let n = u64::from(graph.vertices());
    let dist_array = space.array(n, 4);
    let sigma_array = space.array(n, 8);
    let delta_array = space.array(n, 8);
    let centrality = space.array(n, 8);
    let queue_array = space.array(n, 4);
    let mut bc = Betweenness {
        dist: vec![-1; graph.vertices() as usize],
        sigma: vec![0; graph.vertices() as usize],
        queue: Vec::with_capacity(graph.vertices() as usize),
        qpos: 0,
        phase: BcPhase::Forward,
        round: 0,
        rng: SmallRng::seed_from_u64(seed),
        graph,
        layout,
        dist_array,
        sigma_array,
        delta_array,
        centrality,
        queue_array,
    };
    bc.start_source();
    Generator::new("bc", bc, Emitter::new(4, 1))
}

impl Betweenness {
    fn start_source(&mut self) {
        self.dist.fill(-1);
        self.sigma.fill(0);
        self.queue.clear();
        self.qpos = 0;
        self.phase = BcPhase::Forward;
        self.round += 1;
        let src = self.rng.gen_range(0..self.graph.vertices());
        debug_assert!(src < self.graph.vertices());
        self.dist[src as usize] = 0;
        self.sigma[src as usize] = 1;
        self.queue.push(src);
    }
}

impl Algorithm for Betweenness {
    fn step(&mut self, em: &mut Emitter) {
        match self.phase {
            BcPhase::Forward => {
                if self.qpos >= self.queue.len() {
                    self.phase = BcPhase::Backward;
                    self.qpos = self.queue.len();
                    return;
                }
                let u = self.queue[self.qpos];
                debug_assert!(u < self.graph.vertices());
                em.load(S_AUX2, self.queue_array.at(self.qpos as u64));
                self.qpos += 1;
                let du = self.dist[u as usize];
                let su = self.sigma[u as usize];
                let (dist_array, sigma_array, queue_array) =
                    (self.dist_array, self.sigma_array, self.queue_array);
                let (dist, sigma, queue) = (&mut self.dist, &mut self.sigma, &mut self.queue);
                scan_neighbors(em, &self.graph, &self.layout.clone(), u, |em, _e, v| {
                    debug_assert!((v as usize) < dist.len());
                    em.load_dependent(S_PROP_V, dist_array.at(u64::from(v)));
                    if dist[v as usize] < 0 {
                        dist[v as usize] = du + 1;
                        sigma[v as usize] = su;
                        em.store(S_STORE, dist_array.at(u64::from(v)));
                        em.store(S_STORE, sigma_array.at(u64::from(v)));
                        em.store(S_AUX2, queue_array.at(queue.len() as u64));
                        queue.push(v);
                    } else if dist[v as usize] == du + 1 {
                        em.load(S_AUX, sigma_array.at(u64::from(v)));
                        sigma[v as usize] += su;
                        em.store(S_STORE, sigma_array.at(u64::from(v)));
                    }
                });
            }
            BcPhase::Backward => {
                if self.qpos == 0 {
                    self.start_source();
                    return;
                }
                self.qpos -= 1;
                let w = self.queue[self.qpos];
                debug_assert!(w < self.graph.vertices());
                em.load(S_AUX2, self.queue_array.at(self.qpos as u64));
                em.load(S_AUX, self.delta_array.at(u64::from(w)));
                let dw = self.dist[w as usize];
                let (dist_array, sigma_array, delta_array) =
                    (self.dist_array, self.sigma_array, self.delta_array);
                let dist = &self.dist;
                scan_neighbors(em, &self.graph, &self.layout.clone(), w, |em, _e, v| {
                    em.load_dependent(S_PROP_V, dist_array.at(u64::from(v)));
                    if dist[v as usize] == dw + 1 {
                        em.load(S_AUX, sigma_array.at(u64::from(v)));
                        em.load(S_AUX, delta_array.at(u64::from(v)));
                    }
                });
                em.store(S_STORE, delta_array.at(u64::from(w)));
                em.store(S_STORE, self.centrality.at(u64::from(w)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::Workload;

    fn graph() -> Arc<CsrGraph> {
        Arc::new(CsrGraph::uniform(2048, 8, 5))
    }

    #[test]
    fn pr_cycles_all_vertices() {
        let mut w = pr(graph());
        let mut events = 0u64;
        while events < 200_000 {
            assert!(w.next_event().is_some());
            events += 1;
        }
    }

    #[test]
    fn cc_converges_and_restarts() {
        let g = graph();
        let mut w = cc(Arc::clone(&g));
        // Drain enough events to cover several convergence cycles without
        // the generator ending.
        for _ in 0..500_000 {
            assert!(w.next_event().is_some());
        }
    }

    #[test]
    fn sssp_relaxes_edges() {
        let mut w = sssp(graph(), 11);
        let mut stores = 0;
        for _ in 0..200_000 {
            if let Some(dpc_types::Event::Mem { kind: dpc_types::AccessKind::Write, .. }) =
                w.next_event()
            {
                stores += 1;
            }
        }
        assert!(stores > 100, "Bellman-Ford must relax edges (got {stores} stores)");
    }

    #[test]
    fn bc_runs_both_phases() {
        let mut w = bc(graph(), 13);
        for _ in 0..500_000 {
            assert!(w.next_event().is_some());
        }
    }

    #[test]
    fn weights_are_deterministic_and_positive() {
        for e in 0..1000 {
            let w = weight_of(e);
            assert!((1..64).contains(&w));
            assert_eq!(w, weight_of(e));
        }
    }
}
