//! In-memory trace store: capture each workload stream once, replay it
//! everywhere.
//!
//! A workload's event stream is policy-independent, so the hundreds of
//! simulator configurations a campaign sweeps can all consume one
//! recording instead of re-running the generator (graph traversals,
//! annealing, pointer chasing) per run. [`TraceStore`] is that recording
//! cache: it lazily captures each `(workload, mem_ops)` stream exactly
//! once — even when worker threads race — and hands out zero-copy
//! [`EventCursor`]s that replay the shared [`EventStream`] through the
//! ordinary [`Workload`] interface.
//!
//! The store lives inside the factory's shared inputs
//! (`WorkloadFactory::new` clones share one store), so the cache key does
//! not need to repeat the factory's `(scale, seed)`: one store only ever
//! holds streams for one `(scale, seed)` family. Replay is bit-identical
//! to live generation because generators are deterministic and the
//! capture stops exactly after the last memory event a `mem_ops`-bounded
//! simulation consumes (see [`EventStream::capture_mem_ops`]).

use dpc_types::stream::{EventStream, StreamCursor};
use dpc_types::{Event, Workload};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;
// dpc-lint: allow(determinism::wall-clock) -- capture-time observability only; never reaches simulated state
use std::time::Instant;

/// One captured stream plus how long the capture took.
#[derive(Clone, Debug)]
struct StoreEntry {
    events: Arc<EventStream>,
    capture_wall: Duration,
}

/// Per-key capture cells: the `OnceLock` serializes the capture itself,
/// the outer map lock only guards cell lookup/insertion.
type CaptureCells = BTreeMap<(String, u64), Arc<OnceLock<StoreEntry>>>;

/// Lazily captures and shares event streams keyed by
/// `(workload name, memory-op budget)`.
///
/// Thread-safe: the map lock is only held to fetch or insert a per-key
/// cell; the capture itself runs inside the cell's `OnceLock`, so racing
/// workers block on the one capture instead of duplicating it.
#[derive(Debug, Default)]
pub struct TraceStore {
    cells: Mutex<CaptureCells>,
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the stream for `(name, mem_ops)`, capturing it via `build`
    /// on first request. `build` must return a workload whose stream is
    /// deterministic for the key (true for every registered generator).
    ///
    /// The returned [`CaptureReport`] says whether *this* call performed
    /// the capture and how long the capture took; see
    /// [`CaptureReport::charged_wall`] for attributing that cost to
    /// exactly one run.
    pub fn get_or_capture(
        &self,
        name: &str,
        mem_ops: u64,
        build: impl FnOnce() -> Box<dyn Workload>,
    ) -> (Arc<EventStream>, CaptureReport) {
        let cell = {
            let mut cells = self.cells.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(cells.entry((name.to_owned(), mem_ops)).or_default())
        };
        let mut captured = false;
        let entry = cell.get_or_init(|| {
            captured = true;
            // dpc-lint: allow(determinism::wall-clock) -- capture-time observability only; never reaches simulated state
            let start = Instant::now();
            let mut workload = build();
            let events = EventStream::capture_mem_ops(workload.as_mut(), mem_ops);
            StoreEntry { events: Arc::new(events), capture_wall: start.elapsed() }
        });
        (Arc::clone(&entry.events), CaptureReport { captured, capture_wall: entry.capture_wall })
    }

    /// Number of captured streams.
    pub fn entries(&self) -> usize {
        self.cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .filter(|cell| cell.get().is_some())
            .count()
    }

    /// Total encoded bytes across all captured streams.
    pub fn total_bytes(&self) -> usize {
        self.cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .filter_map(|cell| cell.get())
            .map(|entry| entry.events.encoded_bytes())
            .sum()
    }
}

/// Outcome of a [`TraceStore::get_or_capture`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CaptureReport {
    /// Whether this call performed the capture (first request for the
    /// key) rather than hitting the cache.
    pub captured: bool,
    /// Wall-clock cost of the capture, whichever call paid it.
    pub capture_wall: Duration,
}

impl CaptureReport {
    /// The capture cost attributable to this call: the full capture time
    /// if this call captured, zero on a cache hit. Summing `charged_wall`
    /// over all calls therefore counts each capture exactly once.
    pub fn charged_wall(&self) -> Duration {
        if self.captured {
            self.capture_wall
        } else {
            Duration::ZERO
        }
    }
}

/// Zero-copy replay of a shared [`EventStream`] as a [`Workload`].
///
/// Cloning forks the replay position, not the stream.
#[derive(Clone, Debug)]
pub struct EventCursor {
    name: String,
    events: Arc<EventStream>,
    cursor: StreamCursor,
}

impl EventCursor {
    /// Creates a cursor at the start of `events`.
    pub fn new(name: impl Into<String>, events: Arc<EventStream>) -> Self {
        EventCursor { name: name.into(), events, cursor: StreamCursor::default() }
    }

    /// Resets the replay to the start of the stream.
    pub fn rewind(&mut self) {
        self.cursor = StreamCursor::default();
    }

    /// The shared stream this cursor replays.
    pub fn stream(&self) -> &Arc<EventStream> {
        &self.events
    }

    /// Number of events already replayed.
    pub fn position(&self) -> usize {
        self.cursor.position()
    }

    /// Splits the cursor into the shared stream and the mutable replay
    /// position, for batched replay (`System::run_stream` decodes the
    /// stream in chunks while advancing the position). The borrows are
    /// disjoint, so the stream can be read while the position moves.
    pub fn replay_parts(&mut self) -> (&EventStream, &mut StreamCursor) {
        (&self.events, &mut self.cursor)
    }
}

impl Workload for EventCursor {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_event(&mut self) -> Option<Event> {
        self.events.next_from(&mut self.cursor)
    }
}

/// A run's event source: either a live generator or a cursor replaying a
/// captured stream. Lets run loops stay agnostic of where events come
/// from while the factory decides (see `WorkloadFactory::source`).
pub enum EventSource {
    /// Fresh generator; events are produced on demand.
    Live(Box<dyn Workload>),
    /// Replay of a stream captured in a [`TraceStore`].
    Replay(EventCursor),
}

impl Workload for EventSource {
    fn name(&self) -> &str {
        match self {
            EventSource::Live(workload) => workload.name(),
            EventSource::Replay(cursor) => cursor.name(),
        }
    }

    fn next_event(&mut self) -> Option<Event> {
        match self {
            EventSource::Live(workload) => workload.next_event(),
            EventSource::Replay(cursor) => cursor.next_event(),
        }
    }
}

impl fmt::Debug for EventSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventSource::Live(workload) => f.debug_tuple("Live").field(&workload.name()).finish(),
            EventSource::Replay(cursor) => f.debug_tuple("Replay").field(cursor).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::{Pc, VirtAddr};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counting_workload(counter: &Arc<AtomicUsize>) -> Box<dyn Workload> {
        struct Counting(u64);
        impl Workload for Counting {
            fn name(&self) -> &str {
                "counting"
            }
            fn next_event(&mut self) -> Option<Event> {
                self.0 += 1;
                Some(Event::load(Pc::new(0x400), VirtAddr::new(self.0 * 4096)))
            }
        }
        counter.fetch_add(1, Ordering::SeqCst);
        Box::new(Counting(0))
    }

    #[test]
    fn captures_each_key_exactly_once() {
        let store = TraceStore::new();
        let builds = Arc::new(AtomicUsize::new(0));
        let (first, report) = store.get_or_capture("w", 100, || counting_workload(&builds));
        assert!(report.captured);
        assert_eq!(first.mem_events(), 100);
        let (second, report) = store.get_or_capture("w", 100, || counting_workload(&builds));
        assert!(!report.captured, "second request must hit the cache");
        assert_eq!(report.charged_wall(), Duration::ZERO);
        assert!(Arc::ptr_eq(&first, &second), "stream must be shared, not copied");
        assert_eq!(builds.load(Ordering::SeqCst), 1, "generator must run once");
        // A different budget is a different key.
        let (_, report) = store.get_or_capture("w", 50, || counting_workload(&builds));
        assert!(report.captured);
        assert_eq!(store.entries(), 2);
        assert!(store.total_bytes() > 0);
    }

    #[test]
    fn racing_threads_share_one_capture() {
        let store = Arc::new(TraceStore::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                let builds = Arc::clone(&builds);
                std::thread::spawn(move || {
                    store.get_or_capture("race", 1_000, || counting_workload(&builds)).0
                })
            })
            .collect();
        let streams: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one thread captures");
        assert!(streams.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }

    #[test]
    fn cursor_replays_and_rewinds() {
        let store = TraceStore::new();
        let builds = Arc::new(AtomicUsize::new(0));
        let (events, _) = store.get_or_capture("w", 10, || counting_workload(&builds));
        let mut cursor = EventCursor::new("w", Arc::clone(&events));
        assert_eq!(cursor.name(), "w");
        let first: Vec<_> = std::iter::from_fn(|| cursor.next_event()).collect();
        assert_eq!(first.len(), 10);
        assert_eq!(cursor.position(), 10);
        cursor.rewind();
        let second: Vec<_> = std::iter::from_fn(|| cursor.next_event()).collect();
        assert_eq!(first, second, "rewound cursor must replay identically");
        // Cloned cursors fork the position, not the stream.
        let clone = cursor.clone();
        assert!(Arc::ptr_eq(cursor.stream(), clone.stream()));
    }

    #[test]
    fn replay_parts_share_the_cursor_with_next_event() {
        use dpc_types::stream::EventBatch;
        let store = TraceStore::new();
        let builds = Arc::new(AtomicUsize::new(0));
        let (events, _) = store.get_or_capture("w", 8, || counting_workload(&builds));
        let mut cursor = EventCursor::new("w", events);
        // Decode half in a batch, then keep replaying event-at-a-time:
        // the split parts advance the same position.
        let (stream, pos) = cursor.replay_parts();
        let mut batch = EventBatch::new();
        let mem = stream.decode_chunk(pos, &mut batch, 4, u64::MAX);
        assert_eq!(mem, 4);
        assert_eq!(cursor.position(), 4);
        let rest: Vec<_> = std::iter::from_fn(|| cursor.next_event()).collect();
        assert_eq!(rest.len(), 4);
    }

    #[test]
    fn event_source_delegates_both_ways() {
        let store = TraceStore::new();
        let builds = Arc::new(AtomicUsize::new(0));
        let (events, _) = store.get_or_capture("w", 5, || counting_workload(&builds));
        let mut replay = EventSource::Replay(EventCursor::new("w", events));
        let mut live = EventSource::Live(counting_workload(&builds));
        assert_eq!(replay.name(), "w");
        assert_eq!(live.name(), "counting");
        for _ in 0..5 {
            assert_eq!(replay.next_event(), live.next_event());
        }
        assert_eq!(replay.next_event(), None, "replay ends with the recording");
        assert!(live.next_event().is_some(), "live generator keeps going");
        assert!(format!("{replay:?}").contains("Replay"));
    }
}
