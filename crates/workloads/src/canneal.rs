//! `canneal` — PARSEC's simulated-annealing routing-cost optimizer.
//!
//! The kernel's inner loop picks two random netlist elements, evaluates
//! the routing-cost delta against their neighbor elements, and swaps their
//! locations. The access pattern is dominated by uniformly random reads of
//! 32-byte elements scattered over a large array — one of the most
//! TLB-hostile patterns in the paper's suite.

use crate::emitter::{Algorithm, Emitter, Generator};
use crate::layout::{AddressSpace, VArray};
use crate::{mix, Scale};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const S_ELEM_A: u32 = 0;
const S_ELEM_B: u32 = 1;
const S_NBR: u32 = 2;
const S_SWAP: u32 = 3;

/// Neighbor fan-out per netlist element.
const FANOUT: u64 = 5;

/// The annealing-swap generator.
#[derive(Debug)]
pub struct Canneal {
    elements: VArray,
    n: u64,
    seed: u64,
    rng: SmallRng,
    accepted: u64,
}

/// Builds the `canneal` workload.
pub fn canneal(scale: Scale, seed: u64) -> Generator<Canneal> {
    let n = match scale {
        Scale::Tiny => 1 << 16,
        Scale::Small => 1 << 22,
        Scale::Paper => 1 << 23,
    };
    let mut space = AddressSpace::new();
    let elements = space.array(n, 32);
    Generator::new(
        "canneal",
        Canneal { elements, n, seed, rng: SmallRng::seed_from_u64(seed), accepted: 0 },
        Emitter::new(13, 2),
    )
}

impl Canneal {
    /// Deterministic neighbor id `k` of element `e` (the synthetic
    /// netlist's wiring).
    fn neighbor(&self, e: u64, k: u64) -> u64 {
        mix(self.seed ^ (e * FANOUT + k) ^ 0xCAFE) % self.n
    }
}

impl Algorithm for Canneal {
    fn step(&mut self, em: &mut Emitter) {
        let a = self.rng.gen_range(0..self.n);
        let b = self.rng.gen_range(0..self.n);
        em.load(S_ELEM_A, self.elements.at(a));
        em.load(S_ELEM_B, self.elements.at(b));
        // Routing-cost delta: read all neighbors of both elements. The
        // neighbor ids come from the element records, so the *first*
        // neighbor read waits on its element load; the rest are mutually
        // independent and overlap (the element loads completed long
        // before).
        for k in 0..FANOUT {
            if k == 0 {
                em.load_dependent(S_NBR, self.elements.at(self.neighbor(a, k)));
            } else {
                em.load(S_NBR, self.elements.at(self.neighbor(a, k)));
            }
            em.load(S_NBR, self.elements.at(self.neighbor(b, k)));
        }
        // Metropolis acceptance (deterministic via the seeded RNG).
        if self.rng.gen_bool(0.5) {
            em.store(S_SWAP, self.elements.at(a));
            em.store(S_SWAP, self.elements.at(b));
            self.accepted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::{Event, Workload};
    use std::collections::HashSet;

    #[test]
    fn accesses_are_uniformly_scattered() {
        let mut w = canneal(Scale::Tiny, 3);
        let mut pages = HashSet::new();
        let mut mems = 0;
        while mems < 5000 {
            if let Some(Event::Mem { vaddr, .. }) = w.next_event() {
                pages.insert(vaddr.vpn());
                mems += 1;
            }
        }
        // Tiny: 64K × 32 B = 512 pages; 5000 random touches must hit most.
        assert!(pages.len() > 300, "got {} pages", pages.len());
    }

    #[test]
    fn swaps_emit_stores() {
        let mut w = canneal(Scale::Tiny, 3);
        let mut stores = 0;
        for _ in 0..20_000 {
            if let Some(Event::Mem { kind: dpc_types::AccessKind::Write, .. }) = w.next_event() {
                stores += 1;
            }
        }
        assert!(stores > 100);
    }
}
